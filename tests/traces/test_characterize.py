"""Trace characterisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.characterize import characterize
from repro.traces.trace import Trace
from repro.units import GB


def make_trace(times, pages, page_size=4096):
    return Trace(
        times=np.asarray(times, dtype=float),
        pages=np.asarray(pages, dtype=np.int64),
        page_size=page_size,
    )


class TestCharacterize:
    def test_basic_metrics(self):
        trace = make_trace([0.0, 1.0, 2.0, 3.0], [1, 2, 1, 2])
        profile = characterize(trace, cache_sizes_bytes=[2 * 4096])
        assert profile.num_accesses == 4
        assert profile.reuse_fraction == pytest.approx(0.5)
        assert profile.footprint_bytes == 2 * 4096

    def test_miss_ratio_curve(self):
        # Cyclic pattern over 3 pages: 2-page cache thrashes, 3-page hits.
        pages = [0, 1, 2] * 10
        trace = make_trace(np.arange(30.0), pages)
        profile = characterize(
            trace, cache_sizes_bytes=[2 * 4096, 3 * 4096]
        )
        assert profile.miss_ratio_at[2 * 4096] == pytest.approx(1.0)
        assert profile.miss_ratio_at[3 * 4096] == pytest.approx(3 / 30)

    def test_rate_profile_shape(self):
        # All accesses in the first half.
        trace = make_trace(np.linspace(0.0, 50.0, 100), range(100))
        profile = characterize(trace, rate_windows=2)
        assert len(profile.rate_profile) == 2
        assert profile.rate_profile[0] > 0
        # (the trace's duration ends at its last access, so window 2 is
        # empty only for front-loaded traces; here accesses span it all)

    def test_summary_rows_render(self, small_trace):
        from repro.experiments.formatting import render_table

        profile = characterize(small_trace)
        text = render_table(profile.summary_rows())
        assert "miss ratio @ 4 GB" in text
        assert "popularity" in text

    def test_generated_trace_sanity(self, small_trace):
        profile = characterize(small_trace)
        assert 0.0 < profile.reuse_fraction < 1.0
        # Miss ratios fall with cache size.
        ratios = [profile.miss_ratio_at[s] for s in sorted(profile.miss_ratio_at)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_validation(self):
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            characterize(empty)
        trace = make_trace([0.0], [1])
        with pytest.raises(TraceError):
            characterize(trace, rate_windows=0)
