"""SPECWeb99-class file population."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.fileset import SPECWEB_CLASSES, FileSet, specweb_fileset
from repro.units import KB, MB


class TestFileSet:
    def test_contiguous_page_layout(self):
        fs = FileSet(sizes_bytes=np.array([4096, 8192, 100]), page_size=4096)
        assert fs.num_pages.tolist() == [1, 2, 1]
        assert fs.first_page.tolist() == [0, 1, 3]
        assert fs.total_pages == 4

    def test_file_of_page(self):
        fs = FileSet(sizes_bytes=np.array([4096, 8192, 100]), page_size=4096)
        assert fs.file_of_page(0) == 0
        assert fs.file_of_page(1) == 1
        assert fs.file_of_page(2) == 1
        assert fs.file_of_page(3) == 2
        with pytest.raises(TraceError):
            fs.file_of_page(4)
        with pytest.raises(TraceError):
            fs.file_of_page(-1)

    def test_totals(self):
        fs = FileSet(sizes_bytes=np.array([1000, 3000]), page_size=4096)
        assert fs.total_bytes == 4000
        assert fs.mean_file_bytes == 2000.0
        assert fs.num_files == 2

    def test_validation(self):
        with pytest.raises(TraceError):
            FileSet(sizes_bytes=np.array([]))
        with pytest.raises(TraceError):
            FileSet(sizes_bytes=np.array([0]))
        with pytest.raises(TraceError):
            FileSet(sizes_bytes=np.array([100]), page_size=0)


class TestSpecwebGeneration:
    def test_class_fractions_sum_to_one(self):
        assert sum(c[2] for c in SPECWEB_CLASSES) == pytest.approx(1.0)

    def test_total_size_near_target(self, rng):
        target = 10 * MB
        fs = specweb_fileset(target, rng=rng)
        assert target <= fs.total_bytes <= target * 1.2

    def test_sizes_within_class_bounds(self, rng):
        fs = specweb_fileset(5 * MB, rng=rng)
        low = SPECWEB_CLASSES[0][0]
        high = SPECWEB_CLASSES[-1][1]
        assert fs.sizes_bytes.min() >= low * 0.99
        assert fs.sizes_bytes.max() <= high * 1.01

    def test_file_scale_multiplies_sizes(self, rng):
        small = specweb_fileset(5 * MB, rng=np.random.default_rng(1))
        big = specweb_fileset(
            5 * MB * 64, rng=np.random.default_rng(1), file_scale=64
        )
        assert big.mean_file_bytes == pytest.approx(
            64 * small.mean_file_bytes, rel=0.3
        )

    def test_page_count_distribution_preserved_by_matching_scale(self):
        """DESIGN.md Section 5: file_scale = granularity factor keeps the
        pages-per-file distribution of the paper-scale workload."""
        small = specweb_fileset(
            8 * MB, page_size=4 * KB, rng=np.random.default_rng(5)
        )
        scaled = specweb_fileset(
            8 * MB * 256,
            page_size=4 * KB * 256,
            rng=np.random.default_rng(5),
            file_scale=256,
        )
        assert scaled.num_pages.mean() == pytest.approx(
            small.num_pages.mean(), rel=0.25
        )

    def test_deterministic_with_seeded_rng(self):
        a = specweb_fileset(2 * MB, rng=np.random.default_rng(3))
        b = specweb_fileset(2 * MB, rng=np.random.default_rng(3))
        assert np.array_equal(a.sizes_bytes, b.sizes_bytes)

    def test_validation(self, rng):
        with pytest.raises(TraceError):
            specweb_fileset(0, rng=rng)
        with pytest.raises(TraceError):
            specweb_fileset(1 * MB, rng=rng, file_scale=0)
