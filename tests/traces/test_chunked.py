"""Chunked trace pipeline: generation equivalence and bounded replay.

The contract under test: for any chunk size, concatenating a chunked
source's chunks is **bit-identical** to the materialized builder with
the same seed (same RNG draws, same stable sort, same dtypes), and
replaying the chunks through :func:`repro.sim.runner.run_chunked` is
bit-identical to :func:`repro.sim.runner.run_method` on the
materialized twin -- while peak memory stays bounded by the chunk size
instead of the trace length (asserted at paper scale in
:class:`TestPaperScaleBoundedMemory`).
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.sim.prefill import warm_start_pages
from repro.sim.runner import run_chunked, run_method
from repro.traces.chunked import (
    ChunkedTrace,
    TraceChunk,
    chunk_trace,
    modulate_rate_chunked,
)
from repro.traces.modulation import diurnal_profile, modulate_rate
from repro.traces.specweb import generate_trace, generate_trace_chunked
from repro.traces.suites import build, build_chunked, suite_names
from repro.traces.synthesizer import scale_data_rate, scale_data_rate_chunked
from repro.traces.trace_io import (
    load_csv,
    load_csv_chunked,
    load_npz,
    load_npz_chunked,
    save_csv,
    save_npz,
)
from repro.units import GB, MB
from repro.verify.differential import deep_diff


def assert_traces_equal(materialized, chunked_trace):
    """Every array of the chunked concatenation matches bit for bit."""
    got = chunked_trace.materialize()
    assert np.array_equal(got.times, materialized.times)
    assert got.times.dtype == materialized.times.dtype
    assert np.array_equal(got.pages, materialized.pages)
    assert got.pages.dtype == materialized.pages.dtype
    if materialized.files is None:
        assert got.files is None
    else:
        assert np.array_equal(got.files, materialized.files)
    if materialized.writes is None or not materialized.writes.any():
        assert got.writes is None or not got.writes.any()
    else:
        assert np.array_equal(got.writes, materialized.writes)
    assert got.page_size == materialized.page_size
    if chunked_trace.num_accesses is not None:
        assert chunked_trace.num_accesses == materialized.num_accesses
    if chunked_trace.duration_s is not None:
        assert chunked_trace.duration_s == materialized.duration_s


def assert_results_identical(offline, streamed):
    assert streamed.replay_mode == f"stream-{offline.replay_mode}"
    for fld in dataclasses.fields(streamed):
        if fld.name == "replay_mode":
            continue
        diff = deep_diff(
            getattr(streamed, fld.name), getattr(offline, fld.name), fld.name
        )
        assert diff is None, diff


class TestGenerationEquivalence:
    """Chunked generation == materialized generation, across every suite."""

    @settings(max_examples=30, deadline=None)
    @given(
        suite=st.sampled_from(sorted(suite_names())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        chunk_accesses=st.sampled_from([100, 1000, 7777, 1 << 20]),
    )
    def test_fuzz_all_suites(self, machine, suite, seed, chunk_accesses):
        duration = 600.0
        materialized = build(suite, machine, duration, seed=seed)
        chunked = build_chunked(
            suite, machine, duration, seed=seed, chunk_accesses=chunk_accesses
        )
        assert_traces_equal(materialized, chunked)
        assert chunked.meta["suite"] == suite

    def test_write_flags_round_trip(self, machine):
        chunked = build_chunked(
            "write-heavy", machine, 600.0, seed=7, chunk_accesses=500
        )
        assert chunked.has_writes
        trace = chunked.materialize()
        assert trace.writes is not None and trace.writes.any()

    def test_chunk_size_bound_holds(self, machine):
        chunked = build_chunked(
            "paper-default", machine, 600.0, seed=3, chunk_accesses=128
        )
        sizes = [len(c) for c in chunked.chunks()]
        assert sizes, "no chunks produced"
        assert max(sizes) <= 128

    def test_generate_trace_chunked_direct(self, machine):
        kwargs = dict(
            dataset_bytes=4 * GB,
            data_rate=100 * MB,
            duration_s=300.0,
            page_size=machine.page_bytes,
            seed=11,
            file_scale=machine.scale,
            write_fraction=0.2,
        )
        materialized = generate_trace(**kwargs)
        chunked = generate_trace_chunked(chunk_accesses=900, **kwargs)
        assert_traces_equal(materialized, chunked)


class TestTransforms:
    def test_chunk_trace_views(self, small_trace):
        chunked = chunk_trace(small_trace, 1000)
        assert_traces_equal(small_trace, chunked)

    def test_chunk_trace_rejects_bad_size(self, small_trace):
        with pytest.raises(TraceError):
            chunk_trace(small_trace, 0)

    def test_scale_data_rate_chunked(self, small_trace):
        materialized = scale_data_rate(small_trace, 2.5)
        chunked = scale_data_rate_chunked(chunk_trace(small_trace, 700), 2.5)
        assert_traces_equal(materialized, chunked)
        assert chunked.meta["rate_scaled_by"] == 2.5

    def test_modulate_rate_chunked(self, machine):
        flat = build("paper-default", machine, 600.0, seed=5)
        profile = diurnal_profile(600.0, peak_to_trough=8.0)
        materialized = modulate_rate(flat, profile)
        chunked = modulate_rate_chunked(chunk_trace(flat, 900), profile)
        assert_traces_equal(materialized, chunked)

    def test_modulate_needs_totals(self):
        src = ChunkedTrace(
            factory=lambda: iter(()), num_accesses=None, duration_s=None
        )
        with pytest.raises(TraceError):
            modulate_rate_chunked(src, lambda t: 1.0)

    def test_materialize_empty_raises(self):
        src = ChunkedTrace(factory=lambda: iter(()))
        with pytest.raises(TraceError):
            src.materialize()

    def test_with_meta(self, small_trace):
        chunked = chunk_trace(small_trace, 1000).with_meta(origin="test")
        assert chunked.meta["origin"] == "test"
        assert chunked.num_accesses == small_trace.num_accesses


class TestIo:
    def test_npz_writes_round_trip(self, machine, tmp_path):
        trace = build("write-heavy", machine, 600.0, seed=9)
        assert trace.writes is not None and trace.writes.any()
        path = tmp_path / "writeful.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.writes, trace.writes)
        chunked = load_npz_chunked(path, chunk_accesses=500)
        assert_traces_equal(loaded, chunked)

    def test_csv_chunked_matches_loader(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(small_trace, path)
        whole = load_csv(path, page_size=small_trace.page_size)
        chunked = load_csv_chunked(
            path, page_size=small_trace.page_size, chunk_accesses=700
        )
        assert_traces_equal(whole, chunked)
        sizes = [len(c) for c in chunked.chunks()]
        assert max(sizes) <= 700


class TestChunkedReplay:
    """run_chunked == run_method, bit for bit."""

    @pytest.mark.parametrize(
        "method", ["2TFM-8GB", "2TDS-128GB", "2TNAP", "JOINT"]
    )
    def test_cold_identity(self, machine, method):
        trace = build("paper-default", machine, 600.0, seed=3)
        source = build_chunked(
            "paper-default", machine, 600.0, seed=3, chunk_accesses=2000
        )
        offline = run_method(method, trace, machine, warm_start=False)
        streamed = run_chunked(method, source, machine)
        assert_results_identical(offline, streamed)

    @pytest.mark.parametrize("method", ["2TFM-8GB", "2TDS-128GB", "JOINT"])
    def test_warm_identity(self, machine, method):
        trace = build("paper-default", machine, 600.0, seed=3)
        source = build_chunked(
            "paper-default", machine, 600.0, seed=3, chunk_accesses=2000
        )
        offline = run_method(method, trace, machine, warm_start=True)
        streamed = run_chunked(
            method, source, machine, prefill=warm_start_pages(trace)
        )
        assert_results_identical(offline, streamed)

    def test_write_trace_identity(self, machine):
        trace = build("write-heavy", machine, 600.0, seed=7)
        source = build_chunked(
            "write-heavy", machine, 600.0, seed=7, chunk_accesses=1500
        )
        offline = run_method("2TFM-8GB", trace, machine, warm_start=False)
        streamed = run_chunked("2TFM-8GB", source, machine)
        assert_results_identical(offline, streamed)

    def test_pending_ring_stays_bounded(self, machine):
        """Manager-less streams drain mid-period: the ring never holds
        more than ~one feed batch even when the whole trace fits in a
        single 600-s metrics period."""
        from repro.service.streaming import StreamingManager

        source = build_chunked(
            "paper-default", machine, 600.0, seed=3, chunk_accesses=512
        )
        stream = StreamingManager("2TFM-8GB", machine, expect_writes=False)
        worst = 0
        for chunk in source.chunks():
            stream.feed(chunk.times, chunk.pages, chunk.writes)
            worst = max(worst, stream._hi - stream._lo)
        stream.close()
        assert worst <= 2 * 512


class TestPaperScaleBoundedMemory:
    """The ISSUE 8 acceptance bar: a 10^7-access scale=1 trace replays
    end-to-end through the chunked pipeline with peak RSS bounded by the
    chunk size (plus the generator's O(requests) plan), not the trace.

    Runs in subprocesses so /proc VmHWM measures each pipeline alone.
    The materialized twin merely *generates* the trace and already peaks
    ~4x above the full chunked generate-and-replay run.
    """

    PARAMS = (
        "dataset_bytes=1 * GB, data_rate=100 * MB, duration_s=400.0, "
        "page_size=machine.page_bytes, seed=11, file_scale=machine.scale"
    )

    @staticmethod
    def _run(body: str) -> dict:
        script = textwrap.dedent(
            """\
            import gc, json, sys

            def vm(key):
                with open("/proc/self/status") as handle:
                    for line in handle:
                        if line.startswith(key):
                            return int(line.split()[1]) * 1024
                raise RuntimeError(key)

            from repro.config.machine import scaled_machine
            from repro.sim.runner import run_chunked
            from repro.traces.specweb import (
                generate_trace,
                generate_trace_chunked,
            )
            from repro.units import GB, MB

            machine = scaled_machine(1)
            gc.collect()
            base = vm("VmRSS")
            """
        ) + textwrap.dedent(body)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        return eval(proc.stdout.strip().splitlines()[-1])

    @pytest.mark.skipif(sys.platform != "linux", reason="/proc VmHWM")
    def test_ten_million_accesses_bounded(self):
        chunk = 1 << 20
        chunked = self._run(
            f"""\
            source = generate_trace_chunked(
                {self.PARAMS}, chunk_accesses={chunk},
            )
            result = run_chunked("2TDS-128GB", source, machine)
            print(dict(
                n=source.num_accesses,
                delta=vm("VmHWM") - base,
                mode=repr(result.replay_mode),
                accesses=result.total_accesses,
            ))
            """
        )
        materialized = self._run(
            f"""\
            trace = generate_trace({self.PARAMS})
            print(dict(n=trace.num_accesses, delta=vm("VmHWM") - base))
            """
        )
        assert chunked["n"] >= 10**7
        assert chunked["accesses"] == chunked["n"]
        assert chunked["mode"] == repr("stream-disable")
        assert materialized["n"] == chunked["n"]
        # The replay's peak above the import baseline stays within a
        # small multiple of the chunk footprint (~17 bytes/access for
        # times+pages+ring slack) plus the live memory-model state --
        # measured ~195 MB -- while merely materializing the same trace
        # (no replay at all) peaks ~890 MB in the expansion sort.
        assert chunked["delta"] < materialized["delta"] / 2
        assert chunked["delta"] < 400 * 1024 * 1024
