"""Trace persistence round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.trace import Trace
from repro.traces.trace_io import load_csv, load_npz, save_csv, save_npz


@pytest.fixture()
def trace():
    return Trace(
        times=np.array([0.0, 0.5, 1.25]),
        pages=np.array([3, 1, 3], dtype=np.int64),
        page_size=8192,
        files=np.array([0, 1, 0], dtype=np.int64),
        meta={"generator": "test", "seed": 42},
    )


class TestNpz:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_npz(trace, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.pages, trace.pages)
        assert np.array_equal(loaded.files, trace.files)
        assert loaded.page_size == 8192
        assert loaded.meta == {"generator": "test", "seed": 42}

    def test_roundtrip_without_files(self, trace, tmp_path):
        bare = Trace(times=trace.times, pages=trace.pages)
        path = tmp_path / "bare.npz"
        save_npz(bare, path)
        assert load_npz(path).files is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_npz(tmp_path / "absent.npz")


class TestCsv:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        loaded = load_csv(path, page_size=8192)
        assert np.allclose(loaded.times, trace.times)
        assert np.array_equal(loaded.pages, trace.pages)
        assert np.array_equal(loaded.files, trace.files)

    def test_roundtrip_without_files(self, trace, tmp_path):
        bare = Trace(times=trace.times, pages=trace.pages)
        path = tmp_path / "bare.csv"
        save_csv(bare, path)
        assert load_csv(path).files is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_csv(tmp_path / "absent.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceError):
            load_csv(path)
