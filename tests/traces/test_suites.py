"""Named workload suites."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.traces.suites import build, suite_names
from repro.units import GB, MB


class TestSuites:
    def test_all_names_build(self, fast_machine):
        for name in suite_names():
            trace = build(name, fast_machine, duration_s=240.0, seed=1)
            assert trace.num_accesses > 0
            assert trace.meta["suite"] == name
            assert trace.page_size == fast_machine.page_bytes

    def test_paper_default_parameters(self, fast_machine):
        trace = build("paper-default", fast_machine, duration_s=600.0)
        assert trace.data_rate == pytest.approx(100 * MB, rel=0.2)

    def test_popularity_pair_contrast(self, fast_machine):
        dense = build("dense-popularity", fast_machine, 600.0, seed=3)
        sparse = build("sparse-popularity", fast_machine, 600.0, seed=3)
        assert dense.measured_popularity() < sparse.measured_popularity()

    def test_rate_pair_contrast(self, fast_machine):
        low = build("low-rate", fast_machine, 600.0, seed=3)
        high = build("high-rate", fast_machine, 600.0, seed=3)
        assert high.data_rate > 20 * low.data_rate

    def test_write_heavy_has_writes(self, fast_machine):
        trace = build("write-heavy", fast_machine, 600.0)
        assert trace.write_fraction > 0.05

    def test_diurnal_is_nonstationary(self, fast_machine):
        trace = build("diurnal", fast_machine, 960.0, seed=4)
        first = trace.slice_time(0.0, 480.0).num_accesses
        second = trace.slice_time(480.0, 960.0).num_accesses
        assert abs(first - second) > 0.3 * max(first, second)

    def test_case_insensitive_lookup(self, fast_machine):
        trace = build("Paper-Default", fast_machine, 240.0)
        assert trace.meta["suite"] == "paper-default"

    def test_unknown_name_rejected(self, fast_machine):
        with pytest.raises(TraceError, match="available"):
            build("nope", fast_machine, 240.0)

    def test_small_dataset_footprint(self, fast_machine):
        trace = build("small-dataset", fast_machine, 600.0)
        assert trace.footprint_bytes < 6 * GB
