"""Load modulation: diurnal and on/off time warping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.modulation import (
    diurnal_profile,
    modulate_rate,
    onoff_profile,
)
from repro.traces.trace import Trace


@pytest.fixture()
def flat_trace():
    n = 2000
    return Trace(
        times=np.linspace(0.0, 1000.0, n),
        pages=np.arange(n, dtype=np.int64) % 50,
    )


def rate_in_window(trace, start, end):
    mask = (trace.times >= start) & (trace.times < end)
    return int(mask.sum()) / (end - start)


class TestModulateRate:
    def test_preserves_accesses_and_order(self, flat_trace):
        warped = modulate_rate(flat_trace, diurnal_profile(1000.0))
        assert warped.num_accesses == flat_trace.num_accesses
        assert np.array_equal(warped.pages, flat_trace.pages)
        assert np.all(np.diff(warped.times) >= 0)

    def test_duration_roughly_preserved(self, flat_trace):
        warped = modulate_rate(flat_trace, diurnal_profile(1000.0))
        assert warped.duration_s <= 1000.0
        assert warped.duration_s > 900.0

    def test_constant_profile_is_identityish(self, flat_trace):
        warped = modulate_rate(flat_trace, lambda t: 3.0)
        # Uniform profile keeps accesses uniformly spread.
        assert rate_in_window(warped, 0, 500) == pytest.approx(
            rate_in_window(warped, 500, 1000), rel=0.05
        )

    def test_diurnal_peak_and_trough(self, flat_trace):
        # One cycle with the peak in the first half (sin > 0 there).
        profile = diurnal_profile(1000.0, peak_to_trough=5.0)
        warped = modulate_rate(flat_trace, profile)
        busy = rate_in_window(warped, 100, 400)
        quiet = rate_in_window(warped, 600, 900)
        assert busy > 2.0 * quiet

    def test_onoff_valleys_are_quiet(self, flat_trace):
        profile = onoff_profile(1000.0, on_fraction=0.5, period_s=500.0)
        warped = modulate_rate(flat_trace, profile)
        on_rate = rate_in_window(warped, 0, 240)
        off_rate = rate_in_window(warped, 260, 490)
        assert on_rate > 10.0 * max(off_rate, 1e-9)

    def test_validation(self, flat_trace):
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            modulate_rate(empty, lambda t: 1.0)
        with pytest.raises(TraceError):
            modulate_rate(flat_trace, lambda t: -1.0)
        with pytest.raises(TraceError):
            modulate_rate(flat_trace, lambda t: 0.0)
        with pytest.raises(TraceError):
            modulate_rate(flat_trace, lambda t: 1.0, steps=1)


class TestProfiles:
    def test_diurnal_bounds(self):
        profile = diurnal_profile(100.0, peak_to_trough=5.0)
        values = [profile(t) for t in np.linspace(0, 100, 200)]
        assert max(values) / min(values) == pytest.approx(5.0, rel=0.05)
        assert all(v > 0 for v in values)

    def test_diurnal_validation(self):
        with pytest.raises(TraceError):
            diurnal_profile(0.0)
        with pytest.raises(TraceError):
            diurnal_profile(100.0, peak_to_trough=0.5)

    def test_onoff_shape(self):
        profile = onoff_profile(100.0, on_fraction=0.25, period_s=20.0)
        assert profile(1.0) == 1.0
        assert profile(10.0) == pytest.approx(0.02)
        assert profile(21.0) == 1.0  # next cycle

    def test_onoff_validation(self):
        with pytest.raises(TraceError):
            onoff_profile(100.0, on_fraction=0.0)
        with pytest.raises(TraceError):
            onoff_profile(100.0, off_rate=-0.1)
        with pytest.raises(TraceError):
            onoff_profile(0.0)
