"""The paper's three synthesizer transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.specweb import generate_trace
from repro.traces.synthesizer import (
    densify_popularity,
    scale_data_rate,
    scale_dataset,
)
from repro.traces.trace import Trace
from repro.units import MB


@pytest.fixture(scope="module")
def base_trace():
    return generate_trace(
        dataset_bytes=32 * MB, data_rate=2 * MB, duration_s=300.0, seed=21
    )


class TestRateScaling:
    def test_doubling_rate_halves_duration(self, base_trace):
        faster = scale_data_rate(base_trace, 2.0)
        assert faster.duration_s == pytest.approx(base_trace.duration_s / 2)
        assert faster.data_rate == pytest.approx(base_trace.data_rate * 2)

    def test_pages_unchanged(self, base_trace):
        faster = scale_data_rate(base_trace, 4.0)
        assert np.array_equal(faster.pages, base_trace.pages)

    def test_slowing_down(self, base_trace):
        slower = scale_data_rate(base_trace, 0.5)
        assert slower.data_rate == pytest.approx(base_trace.data_rate / 2)

    def test_meta_records_factor(self, base_trace):
        assert scale_data_rate(base_trace, 2.0).meta["rate_scaled_by"] == 2.0

    def test_rejects_bad_factor(self, base_trace):
        with pytest.raises(TraceError):
            scale_data_rate(base_trace, 0.0)


class TestDatasetScaling:
    def test_factor_4_doubles_footprint_and_accesses(self, base_trace):
        # Paper: "if the data set is enlarged by a factor of 4, the
        # synthesizer doubles the number of files and the size of each".
        bigger = scale_dataset(base_trace, 4.0, seed=1)
        assert bigger.num_accesses == 2 * base_trace.num_accesses
        ratio = bigger.unique_pages / base_trace.unique_pages
        # Reused pages materialise in all replicas (x4); pages touched
        # once only ever get one stretched image (x2), so the ratio lands
        # between 2 and 4, approaching 4 as reuse grows.
        assert 2.0 < ratio <= 4.0 + 1e-9

    def test_factor_1_is_identityish(self, base_trace):
        same = scale_dataset(base_trace, 1.0, seed=1)
        assert same.num_accesses == base_trace.num_accesses
        assert same.unique_pages == base_trace.unique_pages

    def test_reuse_spreads_across_replicas(self, base_trace):
        # Visits to one original page round-robin over `width` replicas,
        # so the hottest new page is visited about width times less.
        bigger = scale_dataset(base_trace, 4.0, seed=1)
        _, base_counts = np.unique(base_trace.pages, return_counts=True)
        _, big_counts = np.unique(bigger.pages, return_counts=True)
        expected = -(-int(base_counts.max()) // 2)  # ceil(max / width)
        assert big_counts.max() == expected

    def test_rejects_bad_input(self, base_trace):
        with pytest.raises(TraceError):
            scale_dataset(base_trace, 0.0)
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            scale_dataset(empty, 4.0)


class TestPopularityDensification:
    def test_densify_reduces_ratio(self, base_trace):
        original = base_trace.measured_popularity()
        target = original / 3
        denser = densify_popularity(base_trace, target, seed=2)
        assert denser.measured_popularity() < original

    def test_footprint_preserved(self, base_trace):
        # The paper's transform must not shrink the data set itself.
        denser = densify_popularity(
            base_trace, base_trace.measured_popularity() / 3, seed=2
        )
        assert denser.unique_pages == base_trace.unique_pages

    def test_access_count_preserved(self, base_trace):
        denser = densify_popularity(base_trace, 0.05, seed=2)
        assert denser.num_accesses == base_trace.num_accesses

    def test_already_dense_is_noop(self, base_trace):
        current = base_trace.measured_popularity()
        result = densify_popularity(base_trace, min(current * 2, 1.0), seed=2)
        assert np.array_equal(result.pages, base_trace.pages)

    def test_rejects_bad_target(self, base_trace):
        with pytest.raises(TraceError):
            densify_popularity(base_trace, 0.0)
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            densify_popularity(empty, 0.1)
