"""Pareto goodness-of-fit checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pareto_check import (
    check_pareto_fit,
    check_trace,
    idle_intervals_of_trace,
)
from repro.errors import FitError
from repro.stats.pareto import ParetoDistribution


class TestCheckFit:
    def test_true_pareto_scores_well(self, rng):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        report = check_pareto_fit(dist.sample(5000, rng))
        assert report.fit.alpha == pytest.approx(2.0, rel=0.2)
        assert report.ks_statistic < 0.05
        assert report.power_error < 0.05
        assert report.usable

    def test_uniform_sample_scores_poorly_on_ks(self, rng):
        sample = rng.uniform(1.0, 2.0, size=5000)
        report = check_pareto_fit(sample)
        assert report.ks_statistic > 0.2

    def test_power_error_definition(self, rng):
        dist = ParetoDistribution(alpha=3.0, beta=2.0)
        sample = dist.sample(50_000, rng)
        report = check_pareto_fit(sample, break_even_s=5.0)
        timeout = report.timeout_s
        from repro.stats.timeout_math import expected_power

        period = sample.sum()
        predicted = expected_power(
            report.fit, sample.size, timeout, period, 1.0, 5.0
        )
        off = np.maximum(sample - timeout, 0.0).sum()
        exact = (period - off) / period + 5.0 * (sample > timeout).sum() / period
        assert report.power_error == pytest.approx(
            abs(predicted - exact), rel=1e-6
        )
        assert report.power_error < 0.05

    def test_needs_five_intervals(self):
        with pytest.raises(FitError):
            check_pareto_fit([1.0, 2.0, 3.0])


class TestTracePath:
    def test_idle_intervals_match_memory_size(self, small_trace):
        small = idle_intervals_of_trace(small_trace, memory_pages=16)
        large = idle_intervals_of_trace(small_trace, memory_pages=4096)
        # More memory -> fewer disk accesses -> fewer, longer intervals.
        assert large.count <= small.count
        if large.count and small.count:
            assert large.mean_length >= small.mean_length

    def test_check_trace_reports_or_declines(self, small_trace):
        report = check_trace(small_trace, memory_pages=64)
        assert report is None or report.num_intervals >= 5

    def test_fit_quality_depends_on_operating_point(self, small_trace):
        """Documented limitation of the paper's estimator: with beta
        anchored to the shortest (aggregation-window-sized) interval, the
        method-of-moments fit is operationally accurate when the cache is
        small (dense misses, genuinely heavy-tailed gaps) but
        overestimates the tail as the cache approaches the data set and
        the residual miss gaps stop looking Pareto."""
        tight = check_trace(small_trace, memory_pages=64)
        loose = check_trace(small_trace, memory_pages=1024)
        assert tight is not None and loose is not None
        assert tight.usable
        assert loose.power_error > tight.power_error

    def test_rejects_bad_inputs(self, small_trace):
        from repro.traces.trace import Trace

        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(FitError):
            idle_intervals_of_trace(empty, 16)
        with pytest.raises(FitError):
            idle_intervals_of_trace(small_trace, 16, warmup_fraction=1.0)
