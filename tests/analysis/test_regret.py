"""Regret analysis: the oracle-vs-online bridge over real runs.

The load-bearing regression here is the clamp-alignment one:
``RegretReport.recomputed_misses`` -- the online miss count re-derived
from the trace profile plus the reconstructed capacity schedule -- must
*exactly* equal ``SimResult.disk_page_accesses`` for epoch-mode (JOINT)
and vectorized-mode (fixed-capacity) runs recorded from ``t=0``.  Any
off-by-one between the oracle's period-boundary clamp and the epoch
kernel's re-clamp shows up as an inequality right there.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.regret import attach_regret, capacity_epochs, compute_regret
from repro.config.machine import scaled_machine
from repro.errors import SimulationError
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, MB


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=60 * MB,
        duration_s=300.0,
        page_size=machine.page_bytes,
        seed=7,
        file_scale=machine.scale,
    )


def _run(method, trace, machine, **kwargs):
    return run_method(method, trace, machine, **kwargs)


class TestClampAlignment:
    """Satellite 4: oracle and kernel agree on period-boundary clamps."""

    @pytest.mark.parametrize("method", ["JOINT", "JOINT-NC", "2TFM-8GB", "ADFM-16GB"])
    def test_recomputed_misses_match_run(self, method, trace, machine):
        result = _run(method, trace, machine)
        report = compute_regret(result, trace, machine)
        assert report.recomputed_misses == result.disk_page_accesses
        assert report.online_misses == result.disk_page_accesses

    def test_scalar_disable_model_still_bounded(self, trace, machine):
        # 2TDS's disable model invalidates pages on resize, which the
        # paging oracle does not model: the recomputed count may differ,
        # but OPT must still lower-bound the actual run.
        result = _run("2TDS-128GB", trace, machine)
        report = compute_regret(result, trace, machine)
        assert report.opt_misses <= result.disk_page_accesses
        assert report.excess_misses >= 0

    def test_epoch_schedule_tiles_trace(self, trace, machine):
        result = _run("JOINT", trace, machine)
        epochs, n = capacity_epochs(result, trace, machine)
        assert epochs[0][0] == 0
        assert epochs[-1][1] == n
        for (lo, hi, cap), (lo2, _, _) in zip(epochs, epochs[1:]):
            assert hi == lo2
            assert cap >= 0
        assert len(epochs) == len(result.periods)


class TestBounds:
    @pytest.mark.parametrize(
        "method", ["JOINT", "2TFM-8GB", "2TPD-128GB", "ALWAYS-ON", "ORFM-8GB"]
    )
    def test_regret_is_one_sided(self, method, trace, machine):
        result = _run(method, trace, machine)
        report = compute_regret(result, trace, machine)
        assert report.excess_misses >= 0
        assert report.opt_misses + report.excess_misses == report.online_misses
        assert report.energy_lower_bound_j > 0
        assert report.energy_ratio >= 1.0
        assert report.online_energy_j >= report.energy_lower_bound_j
        assert (
            report.memory_lower_bound_j + report.disk_lower_bound_j
            == pytest.approx(report.energy_lower_bound_j)
        )
        assert report.offline_disk_schedule_j >= 0.0
        assert report.spin_down_worthy_intervals >= 0

    def test_summary_and_attach(self, trace, machine):
        result = _run("JOINT", trace, machine)
        assert result.regret is None
        attached = attach_regret(result, trace, machine)
        assert attached.regret is not None
        report = compute_regret(result, trace, machine)
        assert attached.regret == report.summary()
        assert attached.regret.opt_misses == report.opt_misses
        assert attached.regret.excess_misses == report.excess_misses
        assert attached.regret.energy_ratio == report.energy_ratio

    def test_runner_regret_flag(self, trace, machine):
        direct = _run("2TFM-8GB", trace, machine, regret=True)
        assert direct.regret is not None
        assert direct.regret.excess_misses >= 0
        assert direct.regret.energy_ratio >= 1.0

    def test_render_mentions_the_numbers(self, trace, machine):
        result = _run("JOINT", trace, machine)
        report = compute_regret(result, trace, machine)
        text = report.render()
        assert "regret report: JOINT" in text
        assert f"OPT {report.opt_misses}" in text
        assert f"excess {report.excess_misses}" in text
        assert "ratio" in text
        assert "period(s)" in text


class TestErrors:
    def test_warmup_run_is_rejected(self, trace, machine):
        result = _run(
            "JOINT", trace, machine, duration_s=1200.0, warmup_s=600.0
        )
        with pytest.raises(SimulationError, match="warmup_s=0"):
            compute_regret(result, trace, machine)

    def test_write_trace_is_rejected(self, machine):
        times = np.linspace(0.0, 50.0, 40)
        pages = np.arange(40, dtype=np.int64) % 7
        writes = np.zeros(40, dtype=bool)
        writes[3] = True
        wtrace = Trace(
            times=times, pages=pages, page_size=machine.page_bytes, writes=writes
        )
        result = _run("2TFM-8GB", wtrace, machine)
        with pytest.raises(SimulationError, match="read-only"):
            compute_regret(result, wtrace, machine)
