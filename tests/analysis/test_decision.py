"""Decision anatomy rendering."""

from __future__ import annotations

import pytest

from repro.analysis.decision import decision_rows, explain_decision
from repro.sim.runner import run_method


@pytest.fixture(scope="module")
def decision(fast_machine, small_trace):
    result = run_method(
        "JOINT", small_trace, fast_machine, duration_s=480.0
    )
    return result.decisions[-1]


class TestDecisionRows:
    def test_one_row_per_candidate(self, decision):
        rows = decision_rows(decision)
        assert len(rows) == len(decision.evaluations)

    def test_exactly_one_chosen(self, decision):
        rows = decision_rows(decision)
        assert sum(1 for row in rows if row["chosen"]) == 1

    def test_chosen_row_matches_decision(self, decision):
        [chosen] = [row for row in decision_rows(decision) if row["chosen"]]
        assert chosen["memory_gb"] == pytest.approx(
            decision.memory_bytes / 2**30, abs=0.01
        )

    def test_memory_power_monotone(self, decision):
        rows = decision_rows(decision)
        powers = [row["mem_W"] for row in rows]
        assert powers == sorted(powers)

    def test_predicted_misses_monotone_nonincreasing(self, decision):
        rows = decision_rows(decision)
        misses = [row["pred_misses"] for row in rows]
        assert all(a >= b for a, b in zip(misses, misses[1:]))


class TestExplainDecision:
    def test_narrative_contains_choice(self, decision):
        text = explain_decision(decision)
        assert f"Period {decision.period_index}" in text
        assert "Candidate enumeration" in text
        assert "chose" in text

    def test_verdict_matches_feasibility(self, decision):
        text = explain_decision(decision)
        feasible = [e for e in decision.evaluations if e.feasible]
        if feasible:
            assert "cheapest feasible" in text
        else:
            assert "No candidate meets" in text
