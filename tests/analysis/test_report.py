"""Result report rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_report
from repro.sim.runner import run_method


@pytest.fixture(scope="module")
def runs(fast_machine, small_trace):
    joint = run_method(
        "JOINT", small_trace, fast_machine, duration_s=480.0, warmup_s=120.0
    )
    base = run_method(
        "ALWAYS-ON", small_trace, fast_machine, duration_s=480.0, warmup_s=120.0
    )
    return joint, base


class TestFormatReport:
    def test_contains_energy_sections(self, runs, fast_machine):
        joint, _ = runs
        text = format_report(joint, fast_machine)
        for token in ("energy (kJ)", "disk timeline", "performance"):
            assert token in text

    def test_joint_decisions_listed(self, runs, fast_machine):
        joint, _ = runs
        text = format_report(joint, fast_machine)
        assert "joint-manager decisions" in text
        assert text.count("period") >= len(joint.decisions)

    def test_baseline_normalisation_line(self, runs, fast_machine):
        joint, base = runs
        text = format_report(joint, fast_machine, baseline=base)
        assert "vs ALWAYS-ON" in text

    def test_fixed_method_lists_periods(self, fast_machine, small_trace):
        result = run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=480.0
        )
        text = format_report(result, fast_machine)
        assert "per-period disk accesses" in text

    def test_breakdowns_sum_to_totals(self, runs, fast_machine):
        joint, _ = runs
        parts = joint.disk_energy.breakdown_joules(fast_machine.disk)
        assert sum(parts.values()) == pytest.approx(joint.disk_energy_j)
        memory = joint.memory_energy
        assert memory.static_j + memory.dynamic_j + memory.transition_j == (
            pytest.approx(joint.memory_energy_j)
        )
