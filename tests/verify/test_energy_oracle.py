"""The drive's incremental energy accounting vs the event-level oracle.

Satellite of the differential-verification PR: real engine runs with the
event log enabled, integrated independently by
:func:`repro.verify.oracles.integrate_disk_events`, must reproduce the
drive's own :class:`DiskEnergy` buckets -- and the audit's
time-conservation check, now with a caller-chosen tolerance, must hold at
a far tighter bound than its transition-time default.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.config.machine import MachineConfig, paper_machine
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim.audit import assert_clean, audit_result, conservation_tolerance
from repro.sim.engine import SimulationEngine
from repro.traces.trace import Trace
from repro.verify.oracles import integrate_disk_events


@pytest.fixture(scope="module")
def small_machine() -> MachineConfig:
    base = paper_machine().scaled(1024)
    manager = dataclasses.replace(base.manager, period_s=120.0)
    return MachineConfig(
        memory=base.memory, disk=base.disk, manager=manager, scale=base.scale
    )


def _bursty_trace(machine: MachineConfig, seed: int) -> Trace:
    rng = np.random.default_rng(seed)
    n = 200
    gaps = np.where(
        rng.random(n) < 0.6,
        rng.exponential(0.05, size=n),
        rng.exponential(20.0, size=n),
    )
    return Trace(
        times=np.cumsum(gaps),
        pages=rng.integers(0, 64, size=n),
        page_size=machine.page_bytes,
    )


def _run(machine: MachineConfig, timeout_s: float, seed: int = 3):
    memory = NapMemorySystem(machine.memory, machine.memory.bank_bytes * 2)
    engine = SimulationEngine(
        machine,
        memory,
        disk_policy=FixedTimeoutPolicy(timeout_s),
        label="energy-oracle",
        record_events=True,
    )
    result = engine.run(_bursty_trace(machine, seed))
    return engine, result


@pytest.mark.parametrize("timeout_s", [0.0, 1.0, 11.7, 30.0, math.inf])
def test_event_integration_reproduces_incremental_buckets(
    small_machine, timeout_s
):
    engine, _ = _run(small_machine, timeout_s)
    booked = engine.disk.energy
    integrated = integrate_disk_events(
        engine.disk.events.events, small_machine.disk
    )
    assert integrated.active_s == pytest.approx(booked.active_s, abs=1e-9)
    assert integrated.idle_s == pytest.approx(booked.idle_s, abs=1e-6)
    assert integrated.standby_s == pytest.approx(booked.standby_s, abs=1e-6)
    assert integrated.transition_s == pytest.approx(
        booked.transition_s, abs=1e-9
    )
    assert integrated.spin_down_cycles == booked.spin_down_cycles
    assert integrated.requests == booked.requests
    assert integrated.total_joules(small_machine.disk) == pytest.approx(
        booked.total_joules(small_machine.disk), rel=1e-12
    )


@pytest.mark.parametrize("timeout_s", [1.0, 11.7])
def test_audit_passes_at_microsecond_tolerance(small_machine, timeout_s):
    """With the event oracle agreeing, conservation holds far tighter than
    the old hardwired transition-time slack."""
    engine, result = _run(small_machine, timeout_s)
    booked = engine.disk.energy
    accounted = (
        booked.active_s + booked.idle_s + booked.standby_s + booked.transition_s
    )
    # The run may end mid-cycle: allow the known unused-spin-up slack, then
    # audit at 1 microsecond, six orders tighter than the default.
    slack = result.duration_s - accounted
    assert -1e-6 <= slack <= small_machine.disk.transition_time_s + 1e-6
    if slack <= 1e-6:
        assert audit_result(result, small_machine, tolerance_s=1e-6) == []
        assert_clean(result, small_machine, tolerance_s=1e-6)


def test_default_tolerance_unchanged(small_machine):
    assert conservation_tolerance(small_machine) == pytest.approx(
        small_machine.disk.transition_time_s
    )
    engine, result = _run(small_machine, 11.7)
    assert audit_result(result, small_machine) == []


def test_negative_tolerance_rejected(small_machine):
    _, result = _run(small_machine, 1.0)
    with pytest.raises(SimulationError):
        audit_result(result, small_machine, tolerance_s=-1.0)


def test_tight_tolerance_detects_dropped_time(small_machine):
    """A corrupted bucket slips under the default slack but not a tight one."""
    import copy

    _, result = _run(small_machine, 1.0)
    corrupted = copy.deepcopy(result)
    corrupted.disk_energy.idle_s -= small_machine.disk.transition_time_s * 0.5
    assert audit_result(corrupted, small_machine) == []  # default: hidden
    problems = audit_result(corrupted, small_machine, tolerance_s=1e-3)
    assert any("missing time" in p for p in problems)
