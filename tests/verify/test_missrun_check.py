"""CHECKS["missrun"]: passes on clean code, catches injected kernel bugs.

The three mutations mirror the miss-run kernel's load-bearing pieces:
the disk's busy-until recurrence, the sequential-merge pricing, and the
wake-delay clamp.  Each is patched at class/module level so the
batchable-disk predicate (which only rejects *instance*-level patches)
still routes runs through the mutated fast path.
"""

from __future__ import annotations

import pytest

import repro.sim.kernels as kernels
from repro.disk.drive import SimDisk
from repro.verify.differential import CHECKS, run_differential
from repro.verify.strategies import random_case


def test_missrun_check_clean(seed_range=range(12)):
    for seed in seed_range:
        assert CHECKS["missrun"](random_case(seed)) is None


def test_missrun_check_via_runner():
    report = run_differential(seeds=6, checks=["missrun"])
    assert report.ok
    assert report.outcomes[0].name == "missrun"


def _first_divergence(max_seed=30):
    for seed in range(max_seed):
        diff = CHECKS["missrun"](random_case(seed))
        if diff is not None:
            return seed, diff
    return None, None


def test_catches_busy_until_off_by_one(monkeypatch):
    """A drive that finishes every batched run one second late."""
    original = SimDisk.submit_run

    def buggy(self, times, services):
        out = original(self, times, services)
        if times:
            self._busy_until += 1.0
        return out

    monkeypatch.setattr(SimDisk, "submit_run", buggy)
    seed, diff = _first_divergence()
    assert diff is not None, "busy_until off-by-one escaped the missrun check"
    assert seed is not None


def test_catches_dropped_sequential_merge(monkeypatch):
    """Pricing every batched miss as a first page (seq flags ignored)."""

    def buggy(service, seq):
        svc_first = service.service_time(1, False)
        return [svc_first] * len(seq)

    monkeypatch.setattr(kernels, "_miss_run_services", buggy)
    seed, diff = _first_divergence()
    assert diff is not None, (
        "dropped sequential-merge flag escaped the missrun check"
    )


def test_catches_misclamped_wake_delay(monkeypatch):
    """A batch path that reports every wake as instantaneous."""
    original = SimDisk.submit_run

    def buggy(self, times, services):
        latencies, wake_delays = original(self, times, services)
        return latencies, [0.0] * len(wake_delays)

    monkeypatch.setattr(SimDisk, "submit_run", buggy)
    seed, diff = _first_divergence()
    assert diff is not None, "mis-clamped wake delay escaped the missrun check"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_check_is_deterministic(seed):
    case = random_case(seed)
    assert CHECKS["missrun"](case) == CHECKS["missrun"](case)
