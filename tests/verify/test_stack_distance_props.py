"""Property tests: the Fenwick-tree tracker vs the explicit LRU stack.

Satellite of the differential-verification PR: Hypothesis drives the
tracker across its compaction boundary (tiny ``initial_capacity``) and
checks it against :func:`repro.verify.oracles.naive_stack_distances`.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stack_distance import COLD, StackDistanceTracker
from repro.verify.oracles import naive_depth_histogram, naive_stack_distances
from repro.verify.strategies import access_patterns, working_set_loops


@given(pages=access_patterns(), capacity=st.sampled_from([4, 5, 8, 16]))
@settings(max_examples=150, deadline=None)
def test_fenwick_matches_naive_across_compaction(pages, capacity):
    """Distances agree with the explicit stack for every pattern family.

    ``initial_capacity`` as small as 4 forces a compaction roughly every
    ``capacity`` distinct-page touches, so renumbering happens many times
    per example.
    """
    tracker = StackDistanceTracker(initial_capacity=capacity)
    fast = [tracker.access(page) for page in pages]
    assert fast == naive_stack_distances(pages)


@given(pages=working_set_loops(boundary=4, max_laps=60))
@settings(max_examples=100, deadline=None)
def test_boundary_sized_loops(pages):
    """Working sets sized exactly at the compaction boundary."""
    tracker = StackDistanceTracker(initial_capacity=4)
    fast = [tracker.access(page) for page in pages]
    assert fast == naive_stack_distances(pages)


@given(pages=access_patterns())
@settings(max_examples=150, deadline=None)
def test_cold_returned_exactly_once_per_distinct_page(pages):
    tracker = StackDistanceTracker(initial_capacity=4)
    cold_pages = [
        page for page in pages if tracker.access(page) == COLD
    ]
    # Every distinct page is cold exactly once, and nothing else is.
    assert Counter(cold_pages) == Counter(set(pages))
    assert tracker.distinct_pages == len(set(pages))


@given(pages=access_patterns())
@settings(max_examples=100, deadline=None)
def test_distances_bounded_by_distinct_pages(pages):
    """A non-cold distance counts distinct pages since the last touch, so
    it can never reach the number of distinct pages seen so far."""
    tracker = StackDistanceTracker(initial_capacity=8)
    seen = set()
    for page in pages:
        depth = tracker.access(page)
        if page in seen:
            assert 0 <= depth < len(seen)
        else:
            assert depth == COLD
        seen.add(page)


@given(pages=access_patterns())
@settings(max_examples=50, deadline=None)
def test_histogram_matches_naive(pages):
    cold, hist = naive_depth_histogram(pages)
    assert cold == len(set(pages))
    assert sum(hist.values()) == len(pages) - cold
    tracker = StackDistanceTracker(initial_capacity=4)
    fast = Counter(
        d for d in (tracker.access(p) for p in pages) if d != COLD
    )
    assert dict(fast) == hist
