"""Tests for the differential runner: checks, minimizer, injected bugs.

The acceptance test of the subsystem lives here: an intentionally
injected off-by-one in the stack-distance fast path must be caught by
``run_differential`` and delta-debugged to a tiny reproducer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import SimulationError
from repro.verify.differential import (
    CHECKS,
    minimize_accesses,
    run_differential,
)
from repro.verify.strategies import PATTERNS, random_case


class TestRunner:
    def test_all_checks_pass_on_clean_code(self):
        report = run_differential(seeds=8)
        assert report.ok
        assert [o.name for o in report.outcomes] == list(CHECKS)
        assert all(o.seeds_run == 8 for o in report.outcomes)
        rendered = report.render()
        assert "PASS" in rendered and "DIVERGED" not in rendered

    def test_check_subset_and_first_seed(self):
        report = run_differential(seeds=3, checks=["stack"], first_seed=100)
        assert report.ok
        assert len(report.outcomes) == 1
        assert report.outcomes[0].name == "stack"

    def test_unknown_check_rejected(self):
        with pytest.raises(SimulationError):
            run_differential(seeds=1, checks=["bogus"])

    def test_zero_seeds_rejected(self):
        with pytest.raises(SimulationError):
            run_differential(seeds=0)

    def test_progress_callback_sees_every_seed(self):
        seen = []
        run_differential(
            seeds=3,
            checks=["intervals"],
            on_progress=lambda name, seed: seen.append((name, seed)),
        )
        assert seen == [("intervals", 0), ("intervals", 1), ("intervals", 2)]


class TestSeededCases:
    def test_cases_are_deterministic(self):
        a, b = random_case(7), random_case(7)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.pages, b.pages)
        assert a.window_s == b.window_s and a.period_s == b.period_s

    def test_pattern_families_all_reachable(self):
        patterns = {random_case(seed).pattern for seed in range(60)}
        assert patterns == set(PATTERNS)

    def test_times_sorted_and_period_covers_them(self):
        for seed in range(20):
            case = random_case(seed)
            assert np.all(np.diff(case.times) >= 0.0)
            assert case.period_s > float(case.times[-1])


class TestMinimizer:
    def test_minimizes_to_the_essential_pair(self):
        # Failing iff both page 7 and page 9 survive, in order.
        def fails(items):
            pages = [p for _, p in items]
            return 7 in pages and 9 in pages

        items = [(float(i), p) for i, p in enumerate([1, 7, 3, 4, 9, 6, 2])]
        out = minimize_accesses(items, fails)
        assert [p for _, p in out] == [7, 9]

    def test_requires_a_failing_start(self):
        with pytest.raises(SimulationError):
            minimize_accesses([(0.0, 1)], lambda items: False)

    def test_single_culprit(self):
        items = [(float(i), i) for i in range(50)]
        out = minimize_accesses(items, lambda it: any(p == 31 for _, p in it))
        assert out == [(31.0, 31)]


class TestInjectedBug:
    """The subsystem's reason to exist: a planted bug must be caught."""

    def test_off_by_one_in_stack_distance_is_caught(self, monkeypatch):
        original = StackDistanceTracker.access

        def buggy(self, page):
            depth = original(self, page)
            # Off-by-one for any depth >= 1: exactly the class of bug a
            # Fenwick-compaction mistake would produce.
            return depth + 1 if depth >= 1 else depth

        monkeypatch.setattr(StackDistanceTracker, "access", buggy)
        report = run_differential(seeds=20, checks=["stack"])
        assert not report.ok
        divergence = report.first_divergence
        assert divergence is not None
        assert divergence.check == "stack"
        # Delta debugging shrinks it to the minimal A B A witness.
        assert len(divergence.pages) <= 4
        assert "reproducer" not in divergence.detail
        assert "VerifyCase" in divergence.reproducer()
        assert "FAIL" in report.render()

    def test_off_by_one_also_breaks_predictor_check(self, monkeypatch):
        original = StackDistanceTracker.access

        def buggy(self, page):
            depth = original(self, page)
            return depth + 1 if depth >= 1 else depth

        monkeypatch.setattr(StackDistanceTracker, "access", buggy)
        report = run_differential(seeds=20, checks=["predictor"])
        assert not report.ok

    def test_eviction_bug_in_predictor_is_caught(self, monkeypatch):
        from repro.cache import predictor as predictor_module

        original = predictor_module.ResizePredictor.record

        def buggy(self, time_s, depth):
            # Drop every fourth sample: predicted misses go wrong.
            self._counter = getattr(self, "_counter", 0) + 1
            if self._counter % 4 == 0:
                return
            original(self, time_s, depth)

        monkeypatch.setattr(predictor_module.ResizePredictor, "record", buggy)
        report = run_differential(seeds=20, checks=["predictor"])
        assert not report.ok

    def test_minimized_case_still_fails_the_check(self, monkeypatch):
        original = StackDistanceTracker.access

        def buggy(self, page):
            depth = original(self, page)
            return depth + 1 if depth >= 1 else depth

        monkeypatch.setattr(StackDistanceTracker, "access", buggy)
        report = run_differential(seeds=20, checks=["stack"])
        d = report.first_divergence
        assert d is not None
        case = random_case(d.seed)
        rebuilt = type(case)(
            seed=d.seed,
            times=np.asarray(d.times),
            pages=np.asarray(d.pages, dtype=np.int64),
            window_s=d.window_s,
            period_s=d.period_s,
            pattern=d.pattern,
        )
        assert CHECKS["stack"](rebuilt) is not None
