"""Inclusion-property tests: predicted misses are monotone in memory size.

Satellite of the differential-verification PR.  LRU's inclusion property
(a larger LRU cache holds a superset of a smaller one) implies that the
predicted disk-access count must be monotonically non-increasing in the
candidate memory size -- for the literal extended LRU list of
``cache/ghost.py``, for the one-pass ``cache/predictor.py``, and for the
brute-force oracle, all of which must also agree with each other.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.counters import COLD_MISS
from repro.cache.ghost import ExtendedLRUList
from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.verify.oracles import naive_lru_misses
from repro.verify.strategies import access_patterns

CAPACITIES = tuple(range(0, 24))


@given(pages=access_patterns(max_size=200))
@settings(max_examples=100, deadline=None)
def test_ghost_list_misses_monotone_in_size(pages):
    slots = 64  # larger than any working set access_patterns() generates
    lru = ExtendedLRUList(slots, resident_pages=8)
    cold = sum(1 for page in pages if lru.access(page) == COLD_MISS)
    misses = [cold + lru.misses_if_resident(m) for m in range(slots + 1)]
    for smaller, larger in zip(misses, misses[1:]):
        assert smaller >= larger
    # At full list size only cold misses remain.
    assert misses[-1] == cold == len(set(pages))


@given(pages=access_patterns(max_size=200))
@settings(max_examples=100, deadline=None)
def test_ghost_list_matches_literal_lru(pages):
    lru = ExtendedLRUList(64, resident_pages=8)
    cold = sum(1 for page in pages if lru.access(page) == COLD_MISS)
    for m in range(1, 33):
        assert cold + lru.misses_if_resident(m) == naive_lru_misses(pages, m)


@given(
    pages=access_patterns(max_size=200),
    tracker_capacity=st.sampled_from([4, 8, 16]),
)
@settings(max_examples=100, deadline=None)
def test_predictor_misses_monotone_in_size(pages, tracker_capacity):
    tracker = StackDistanceTracker(initial_capacity=tracker_capacity)
    predictor = ResizePredictor()
    for i, page in enumerate(pages):
        predictor.record(float(i), tracker.access(page))
    predictions = predictor.predict(
        CAPACITIES, window_s=0.0, period_start=0.0, period_end=float(len(pages)) + 1.0
    )
    counts = [p.num_disk_accesses for p in predictions]
    for smaller, larger in zip(counts, counts[1:]):
        assert smaller >= larger
    for prediction in predictions:
        assert prediction.num_disk_accesses == naive_lru_misses(
            pages, prediction.capacity_pages
        )
