"""Campaign-backed differential verification."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.verify import differential
from repro.verify.differential import run_differential
from repro.verify.parallel import chunk_seeds, run_differential_campaign


class TestChunking:
    def test_covers_exactly_the_seed_count(self):
        assert sum(chunk_seeds(50, 4)) == 50
        assert sum(chunk_seeds(7, 2, chunk=3)) == 7

    def test_heuristic_gives_several_chunks_per_worker(self):
        sizes = chunk_seeds(64, 4)
        assert len(sizes) == 16
        assert all(size == 4 for size in sizes)

    def test_explicit_chunk_respected(self):
        assert chunk_seeds(10, 8, chunk=10) == [10]

    def test_bad_chunk_rejected(self):
        with pytest.raises(SimulationError):
            chunk_seeds(10, 2, chunk=0)


class TestEquivalence:
    def test_report_matches_serial_runner(self):
        kwargs = dict(
            seeds=6, checks=["stack", "intervals"], first_seed=0, max_accesses=60
        )
        serial = run_differential(**kwargs)
        campaign = run_differential_campaign(jobs=2, **kwargs)
        assert serial.ok and campaign.ok
        assert campaign.render() == serial.render()

    def test_unknown_check_rejected(self):
        with pytest.raises(SimulationError, match="unknown check"):
            run_differential_campaign(seeds=2, checks=["bogus"])

    def test_zero_seeds_rejected(self):
        with pytest.raises(SimulationError):
            run_differential_campaign(seeds=0)


class TestDivergenceAccounting:
    """``seeds_run`` and the reported divergence must match the serial
    early-exit semantics even though chunks run to completion."""

    @pytest.fixture()
    def injected(self, monkeypatch):
        def bad_check(case):
            return "injected divergence" if case.seed == 7 else None

        monkeypatch.setitem(differential.CHECKS, "stack", bad_check)

    def test_divergence_survives_chunk_merge(self, injected):
        serial = run_differential(seeds=12, checks=["stack"], max_accesses=40)
        # jobs=1 keeps execution in-process so the monkeypatch applies.
        campaign = run_differential_campaign(
            seeds=12, checks=["stack"], max_accesses=40, jobs=1, chunk=5
        )
        assert not serial.ok and not campaign.ok
        assert campaign.outcomes[0].seeds_run == serial.outcomes[0].seeds_run == 8
        assert campaign.first_divergence.seed == serial.first_divergence.seed == 7

    def test_earliest_divergence_wins(self, monkeypatch):
        def bad_check(case):
            return "boom" if case.seed in (3, 9) else None

        monkeypatch.setitem(differential.CHECKS, "stack", bad_check)
        campaign = run_differential_campaign(
            seeds=12, checks=["stack"], max_accesses=40, jobs=1, chunk=4
        )
        assert campaign.first_divergence.seed == 3
        assert campaign.outcomes[0].seeds_run == 4

    def test_first_seed_offset_accounted(self, monkeypatch):
        def bad_check(case):
            return "boom" if case.seed == 25 else None

        monkeypatch.setitem(differential.CHECKS, "stack", bad_check)
        campaign = run_differential_campaign(
            seeds=10,
            checks=["stack"],
            first_seed=20,
            max_accesses=40,
            jobs=1,
            chunk=3,
        )
        assert campaign.first_divergence.seed == 25
        assert campaign.outcomes[0].seeds_run == 6
