"""Property tests: the Pareto estimators recover known parameters.

Satellite of the differential-verification PR: all three estimators
(moments, MLE, Hill) are fed samples drawn from a *known* Pareto and must
recover ``(alpha, beta)`` within tolerance; degenerate inputs must raise
:class:`FitError` in strict mode and still never produce NaN in the
default (clamping) simulation mode.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.stats.pareto import (
    ALPHA_MAX,
    ParetoDistribution,
    fit_hill,
    fit_mle,
    fit_moments,
)

#: Shapes where the estimators are well-behaved with a few thousand
#: samples: the mean exists comfortably and the tail is still heavy.
ALPHAS = st.floats(min_value=1.3, max_value=6.0)
BETAS = st.floats(min_value=0.05, max_value=60.0)


def _samples(alpha: float, beta: float, n: int, seed: int) -> np.ndarray:
    return ParetoDistribution(alpha=alpha, beta=beta).sample(
        n, rng=np.random.default_rng(seed)
    )


@given(alpha=ALPHAS, beta=BETAS, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_mle_recovers_known_parameters(alpha, beta, seed):
    data = _samples(alpha, beta, 4000, seed)
    fit = fit_mle(data)
    # MLE is sqrt(n)-consistent: alpha to ~10% at n=4000, and beta (the
    # sample minimum) converges even faster from above.
    assert fit.alpha == pytest.approx(alpha, rel=0.15)
    assert beta <= fit.beta <= beta * 1.05


@given(alpha=ALPHAS, beta=BETAS, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_moments_recovers_known_parameters(alpha, beta, seed):
    # The sample mean of a heavy tail converges slowly; fix alpha >= 2 so
    # the variance exists and the paper's estimator has a fair chance.
    alpha = max(alpha, 2.0)
    data = _samples(alpha, beta, 6000, seed)
    fit = fit_moments(data, beta=beta)
    assert fit.alpha == pytest.approx(alpha, rel=0.25)
    assert fit.beta == beta


@given(alpha=ALPHAS, beta=BETAS, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_hill_recovers_alpha(alpha, beta, seed):
    data = _samples(alpha, beta, 4000, seed)
    fit = fit_hill(data, tail_fraction=0.5)
    assert fit.alpha == pytest.approx(alpha, rel=0.2)


# --- degenerate inputs ---------------------------------------------------------


@pytest.mark.parametrize("fit", [fit_moments, fit_mle, fit_hill])
def test_empty_samples_raise(fit):
    with pytest.raises(FitError):
        fit([])


@pytest.mark.parametrize("fit", [fit_moments, fit_mle, fit_hill])
@pytest.mark.parametrize("bad", [[1.0, -2.0], [0.0, 3.0], [1.0, math.nan], [math.inf]])
def test_nonpositive_or_nonfinite_samples_raise(fit, bad):
    with pytest.raises(FitError):
        fit(bad)


@pytest.mark.parametrize(
    "fit", [fit_moments, fit_mle, lambda s, strict: fit_hill(s, strict=strict)]
)
def test_constant_samples_strict_mode_raises(fit):
    with pytest.raises(FitError):
        fit([3.0, 3.0, 3.0, 3.0], strict=True)


def test_sub_beta_samples_strict_mode_raises():
    # Samples below an explicit beta contradict the model's support.
    with pytest.raises(FitError):
        fit_moments([1.0, 1.5, 2.0], beta=5.0, strict=True)
    with pytest.raises(FitError):
        fit_mle([1.0, 1.5, 2.0], beta=5.0, strict=True)


def test_single_sample_hill_strict_mode_raises():
    with pytest.raises(FitError):
        fit_hill([7.0], strict=True)


@given(
    value=st.floats(min_value=1e-3, max_value=1e3),
    n=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=50, deadline=None)
def test_default_mode_clamps_instead_of_nan(value, n):
    """Simulation callers keep the historic clamp: never NaN, never raise."""
    samples = [value] * n
    for fit in (fit_moments, fit_mle, fit_hill):
        dist = fit(samples)
        assert math.isfinite(dist.alpha) and math.isfinite(dist.beta)
        assert dist.alpha == ALPHA_MAX


@given(
    alpha=ALPHAS,
    beta=BETAS,
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(min_value=2, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_fits_never_return_nan(alpha, beta, seed, n):
    data = _samples(alpha, beta, n, seed)
    for fit in (fit_moments, fit_mle, fit_hill):
        dist = fit(data)
        assert math.isfinite(dist.alpha) and math.isfinite(dist.beta)
        assert dist.alpha >= 1.0 and dist.beta > 0.0
