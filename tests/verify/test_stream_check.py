"""CHECKS["stream"]: passes on clean code, catches injected stream bugs."""

from __future__ import annotations

import pytest

import repro.service.streaming as streaming
from repro.service.streaming import StreamingManager
from repro.verify.differential import CHECKS, run_differential
from repro.verify.strategies import random_case


def test_stream_check_clean(seed_range=range(12)):
    for seed in seed_range:
        assert CHECKS["stream"](random_case(seed)) is None


def test_stream_check_via_runner():
    report = run_differential(seeds=6, checks=["stream"])
    assert report.ok
    assert report.outcomes[0].name == "stream"


def _first_divergence(max_seed=20):
    for seed in range(max_seed):
        diff = CHECKS["stream"](random_case(seed))
        if diff is not None:
            return seed, diff
    return None, None


def test_catches_boundary_off_by_one(monkeypatch):
    """Flipping which side of a period edge a tied access lands on.

    The check snaps accesses onto exact boundaries precisely to expose
    this: side='right' pushes the tied access into the next epoch, so
    decisions see one fewer access.
    """
    monkeypatch.setattr(streaming, "_BOUNDARY_SIDE", "right")
    seed, diff = _first_divergence()
    assert diff is not None, "boundary off-by-one escaped the stream check"
    assert seed is not None


def test_catches_dropped_partial_batch(monkeypatch):
    """A close() that silently drops the still-buffered tail of the stream."""
    monkeypatch.setattr(
        StreamingManager,
        "_drain_pending",
        lambda self, cutoff, duration_s: None,
    )
    seed, diff = _first_divergence()
    assert diff is not None, "dropped partial batch escaped the stream check"


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_check_is_deterministic(seed):
    case = random_case(seed)
    assert CHECKS["stream"](case) == CHECKS["stream"](case)
