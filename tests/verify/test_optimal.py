"""Unit and injected-bug tests for the offline optimality oracle.

The mutation tests are this suite's acceptance criterion: a deliberately
broken Belady tie-break and a broken break-even threshold must both be
caught by ``CHECKS["optimal"]`` through the ordinary differential
runner, exactly like the planted stack-distance bug in
``test_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.disk_spec import DiskSpec
from repro.errors import SimulationError
from repro.stats.competitive import offline_optimal_energy
from repro.verify import optimal
from repro.verify.differential import CHECKS, run_differential
from repro.verify.optimal import (
    compute_next_use,
    naive_opt_replay,
    offline_disk_energy,
    opt_replay,
)


class TestNextUse:
    def test_matches_forward_scan(self):
        rng = np.random.default_rng(3)
        pages = rng.integers(0, 9, size=120)
        fast = compute_next_use(pages)
        for i in range(pages.size):
            expected = pages.size
            for j in range(i + 1, pages.size):
                if pages[j] == pages[i]:
                    expected = j
                    break
            assert fast[i] == expected

    def test_empty_and_singleton(self):
        assert compute_next_use(np.array([], dtype=np.int64)).size == 0
        assert compute_next_use(np.array([7])).tolist() == [1]


class TestOptReplay:
    def test_classic_belady_example(self):
        # The textbook stream: OPT keeps the page with the farthest reuse.
        pages = np.array([1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5])
        out = opt_replay(pages, [(0, 12, 3)])
        lru_misses = 10  # LRU thrashes this stream at capacity 3.
        assert out.misses == 7
        assert out.misses < lru_misses

    def test_zero_capacity_misses_everything(self):
        pages = np.array([1, 1, 1, 2])
        out = opt_replay(pages, [(0, 4, 0)])
        assert out.misses == 4
        assert out.final_resident == frozenset()

    def test_capacity_one_keeps_only_current(self):
        pages = np.array([1, 1, 2, 2, 1])
        out = opt_replay(pages, [(0, 5, 1)])
        assert out.miss_flags.tolist() == [True, False, True, False, True]

    def test_down_resize_clamps_resident_set(self):
        # Two epochs: fill three pages, then shrink to one; the survivor
        # must be the page reused soonest after the boundary.
        pages = np.array([1, 2, 3, 3, 1])
        out = opt_replay(pages, [(0, 3, 3), (3, 5, 1)])
        # At the boundary the next uses are 3->index 3, 1->index 4,
        # 2->never; capacity 1 keeps page 3 (soonest), so access 3 hits
        # and access 4 (page 1) misses again.
        assert out.miss_flags.tolist() == [True, True, True, False, True]

    def test_initial_resident_prevents_cold_misses(self):
        pages = np.array([5, 6, 5, 6])
        out = opt_replay(pages, [(0, 4, 2)], initial_resident=[5, 6])
        assert out.misses == 0

    def test_prefill_page_never_accessed_is_evicted_first(self):
        pages = np.array([1, 2, 1, 2])
        out = opt_replay(pages, [(0, 4, 2)], initial_resident=[99, 1])
        # 99 never recurs: it is the farthest-future victim on the first
        # miss, after which {1, 2} stay resident.
        assert out.misses == 1
        assert out.final_resident == frozenset({1, 2})

    def test_epoch_validation(self):
        pages = np.array([1, 2, 3])
        with pytest.raises(SimulationError):
            opt_replay(pages, [(0, 2, 4)])  # does not cover the trace
        with pytest.raises(SimulationError):
            opt_replay(pages, [(1, 3, 4)])  # does not start at 0
        with pytest.raises(SimulationError):
            opt_replay(pages, [(0, 3, -1)])  # negative capacity
        with pytest.raises(SimulationError):
            opt_replay(pages, [])  # non-empty trace, no epochs

    def test_fast_equals_naive_on_random_schedules(self):
        rng = np.random.default_rng(11)
        for _ in range(60):
            n = int(rng.integers(1, 80))
            pages = rng.integers(0, 14, size=n)
            cut = int(rng.integers(0, n + 1))
            epochs = [
                (0, cut, int(rng.integers(0, 10))),
                (cut, n, int(rng.integers(0, 10))),
            ]
            prefill = rng.integers(0, 25, size=int(rng.integers(0, 6))).tolist()
            fast = opt_replay(pages, epochs, initial_resident=prefill)
            slow = naive_opt_replay(pages, epochs, initial_resident=prefill)
            assert np.array_equal(fast.miss_flags, slow.miss_flags)
            assert fast.final_resident == slow.final_resident


class TestOfflineDisk:
    def test_matches_competitive_closed_form(self):
        spec = DiskSpec()
        lengths = np.array([0.0, 1.0, spec.break_even_time_s, 40.0, 500.0])
        assert offline_disk_energy(lengths, spec) == pytest.approx(
            offline_optimal_energy(lengths.tolist(), spec)
        )

    def test_break_even_boundary_stays_up(self):
        spec = DiskSpec()
        t_be = spec.break_even_time_s
        # At exactly the break-even length both choices cost the same.
        at = offline_disk_energy(np.array([t_be]), spec)
        assert at == pytest.approx(spec.static_power_watts * t_be)

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulationError):
            offline_disk_energy(np.array([-1.0]))


class TestCheckRegistration:
    def test_optimal_is_registered(self):
        assert "optimal" in CHECKS
        assert CHECKS["optimal"] is optimal.check_optimal

    def test_clean_code_passes(self):
        report = run_differential(seeds=10, checks=["optimal"])
        assert report.ok, report.render()


class TestInjectedBug:
    """Deliberate oracle mutations must be caught by the harness."""

    def test_broken_belady_tie_break_is_caught(self, monkeypatch):
        # Flip the tie-break to prefer the *largest* page id.  Miss
        # counts are provably tie-invariant, so this is only visible in
        # the resident-set comparison -- exactly what the check compares.
        monkeypatch.setattr(
            optimal, "evict_key", lambda next_use, page: (-next_use, -page)
        )
        report = run_differential(seeds=30, checks=["optimal"])
        assert not report.ok
        divergence = report.first_divergence
        assert divergence is not None
        assert divergence.check == "optimal"
        assert "resident" in divergence.detail
        assert "FAIL" in report.render()

    def test_broken_break_even_threshold_is_caught(self, monkeypatch):
        # Spin down only past *twice* the break-even time: the schedule
        # stops matching the competitive-analysis closed form.
        def buggy(lengths, break_even_s):
            return np.asarray(lengths, dtype=np.float64) > 2.0 * break_even_s

        monkeypatch.setattr(optimal, "offline_spin_decisions", buggy)
        report = run_differential(seeds=30, checks=["optimal"])
        assert not report.ok
        divergence = report.first_divergence
        assert divergence is not None
        assert divergence.check == "optimal"
        assert "disk energy" in divergence.detail

    def test_minimized_case_still_fails_the_check(self, monkeypatch):
        monkeypatch.setattr(
            optimal, "evict_key", lambda next_use, page: (-next_use, -page)
        )
        report = run_differential(seeds=30, checks=["optimal"])
        d = report.first_divergence
        assert d is not None
        from repro.verify.strategies import VerifyCase

        rebuilt = VerifyCase(
            seed=d.seed,
            times=np.asarray(d.times),
            pages=np.asarray(d.pages, dtype=np.int64),
            window_s=d.window_s,
            period_s=d.period_s,
            pattern=d.pattern,
        )
        assert CHECKS["optimal"](rebuilt) is not None
