"""Unit and property tests for the brute-force oracles themselves.

The oracles are the trusted side of every differential check, so they get
their own scrutiny: closed forms vs numerical integration, the eq. (5)
optimum vs the timeout grid, the naive LRU vs the stack-distance
derivation (inclusion property), and the event integrator's rejection of
inconsistent logs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.disk_spec import DiskSpec
from repro.disk.events import DiskEventLog
from repro.errors import SimulationError
from repro.stats.pareto import ParetoDistribution
from repro.stats.timeout_math import (
    expected_off_time,
    expected_power,
    expected_spin_downs,
    optimal_timeout,
)
from repro.verify import oracles
from repro.verify.strategies import access_patterns

DISTS = st.builds(
    ParetoDistribution,
    alpha=st.floats(min_value=1.1, max_value=20.0),
    beta=st.floats(min_value=0.1, max_value=30.0),
)


# --- naive LRU and the inclusion property -------------------------------------


@given(pages=access_patterns(max_size=150))
@settings(max_examples=100, deadline=None)
def test_naive_lru_consistent_with_stack_distances(pages):
    """``misses(m) == cold + #{distances >= m}`` -- Mattson's theorem,
    checked between two independently-written oracles."""
    distances = oracles.naive_stack_distances(pages)
    cold, hist = oracles.naive_depth_histogram(pages)
    assert len(distances) == len(pages)
    for m in range(0, 20):
        from_stack = cold + sum(n for d, n in hist.items() if d >= m)
        if m == 0:
            assert oracles.naive_lru_misses(pages, m) == len(pages)
        else:
            assert oracles.naive_lru_misses(pages, m) == from_stack


def test_naive_lru_miss_times_align_with_counts():
    times = [0.0, 1.0, 2.0, 3.0, 4.0]
    pages = [1, 2, 1, 3, 1]
    for m in range(0, 5):
        miss_times = oracles.naive_lru_miss_times(times, pages, m)
        assert len(miss_times) == oracles.naive_lru_misses(pages, m)
    # m=2: [1, 2] then 1 hits, 3 evicts 2... the literal trace:
    assert oracles.naive_lru_miss_times(times, pages, 2) == [0.0, 1.0, 3.0]


def test_naive_idle_intervals_rejects_unsorted():
    with pytest.raises(SimulationError):
        oracles.naive_idle_intervals([2.0, 1.0], 0.0)


# --- eq. (2)-(4): closed forms vs numerical integration ------------------------


@given(
    dist=DISTS,
    n_i=st.floats(min_value=0.0, max_value=200.0),
    timeout=st.floats(min_value=0.01, max_value=500.0),
)
@settings(max_examples=80, deadline=None)
def test_numeric_matches_closed_forms(dist, n_i, timeout):
    closed_ts = expected_off_time(dist, n_i, timeout)
    numeric_ts = oracles.numeric_expected_off_time(dist, n_i, timeout)
    assert numeric_ts == pytest.approx(closed_ts, rel=1e-6, abs=1e-9)

    closed_h = expected_spin_downs(dist, n_i, timeout)
    numeric_h = oracles.numeric_expected_spin_downs(dist, n_i, timeout)
    assert numeric_h == pytest.approx(closed_h, rel=1e-6, abs=1e-9)


@given(
    dist=DISTS,
    n_i=st.floats(min_value=0.0, max_value=60.0),
    timeout=st.floats(min_value=0.01, max_value=500.0),
)
@settings(max_examples=60, deadline=None)
def test_numeric_power_matches_closed_form(dist, n_i, timeout):
    period, p_d, t_be = 600.0, 5.26, 11.7
    closed = expected_power(dist, n_i, timeout, period, p_d, t_be)
    numeric = oracles.numeric_expected_power(dist, n_i, timeout, period, p_d, t_be)
    assert numeric == pytest.approx(closed, rel=1e-6, abs=1e-9)


def test_numeric_oracles_refuse_fragile_alpha():
    dist = ParetoDistribution(alpha=1.0 + 1e-6, beta=1.0)
    with pytest.raises(SimulationError):
        oracles.numeric_expected_off_time(dist, 1.0, 10.0)


# --- eq. (5) vs the timeout grid ----------------------------------------------


@given(dist=DISTS, n_i=st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=80, deadline=None)
def test_eq5_beats_the_grid(dist, n_i):
    """alpha * t_be minimises un-capped eq. (4): no grid point does better."""
    period, p_d, t_be = 600.0, 5.26, 11.7
    eq5 = optimal_timeout(dist, t_be)
    at_eq5 = oracles.unclamped_expected_power(dist, n_i, eq5, period, p_d, t_be)
    _, grid_power = oracles.grid_best_timeout(dist, n_i, period, p_d, t_be)
    # Sign-safe slack: the unclamped power goes negative when t_s > T.
    assert at_eq5 <= grid_power + max(abs(grid_power) * 1e-3, 1e-9)


def test_grid_locates_eq5_when_interior():
    dist = ParetoDistribution(alpha=2.0, beta=5.0)
    t_be = 11.7
    best_t, _ = oracles.grid_best_timeout(
        dist, 10.0, 600.0, 5.26, t_be, grid_points=4000
    )
    assert best_t == pytest.approx(dist.alpha * t_be, rel=0.01)


# --- event integration error paths --------------------------------------------


def test_integrator_rejects_wake_without_spin_down():
    log = DiskEventLog()
    log.record_submit(
        arrival_s=1.0, start_s=3.0, finish_s=4.0, wake_delay_s=2.0,
        service_s=1.0, woke=True,
    )
    with pytest.raises(SimulationError):
        oracles.integrate_disk_events(log.events, DiskSpec())


def test_integrator_rejects_double_spin_down():
    log = DiskEventLog()
    log.record_spin_down(10.0)
    log.record_spin_down(20.0)
    with pytest.raises(SimulationError):
        oracles.integrate_disk_events(log.events, DiskSpec())


def test_integrator_rejects_serving_while_spun_down():
    log = DiskEventLog()
    log.record_spin_down(10.0)
    log.record_submit(
        arrival_s=20.0, start_s=20.0, finish_s=21.0, wake_delay_s=0.0,
        service_s=1.0, woke=False,
    )
    with pytest.raises(SimulationError):
        oracles.integrate_disk_events(log.events, DiskSpec())


def test_integrator_simple_timeline():
    """Hand-computed two-request timeline with one spin-down cycle."""
    spec = DiskSpec()
    log = DiskEventLog()
    log.record_submit(
        arrival_s=10.0, start_s=10.0, finish_s=11.0, wake_delay_s=0.0,
        service_s=1.0, woke=False,
    )
    log.record_spin_down(31.0)  # after a 20 s idle gap
    wake_start = 100.0
    start = wake_start + spec.spin_up_time_s
    log.record_submit(
        arrival_s=100.0, start_s=start, finish_s=start + 2.0,
        wake_delay_s=start - 100.0, service_s=2.0, woke=True,
    )
    out = oracles.integrate_disk_events(log.events, spec)
    assert out.requests == 2
    assert out.spin_down_cycles == 1
    assert out.active_s == pytest.approx(3.0)
    assert out.idle_s == pytest.approx(10.0 + 20.0)
    # standby: from spin-down completion to the wake start
    assert out.standby_s == pytest.approx(100.0 - (31.0 + spec.spin_down_time_s))
    assert out.transition_s == pytest.approx(spec.transition_time_s)


# --- selection oracle ----------------------------------------------------------


def test_oracle_select_requires_candidates():
    with pytest.raises(SimulationError):
        oracles.oracle_select([])
