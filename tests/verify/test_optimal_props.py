"""Property tests for the offline optimality oracle.

Hypothesis drives :func:`repro.verify.optimal.opt_replay` across the
same pattern families the differential fuzzer uses and pins the three
laws the regret report relies on: OPT misses are monotone in capacity,
OPT never loses to LRU (so regret is non-negative), and the fast heap
replay is exchangeable with the brute-force twin under arbitrary
capacity schedules.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.profile import build_profile
from repro.traces.trace import Trace
from repro.verify.optimal import (
    compute_next_use,
    naive_opt_replay,
    opt_replay,
)
from repro.verify.strategies import access_patterns


def _capacity_schedules(n: int) -> st.SearchStrategy:
    """Epoch lists tiling [0, n) with 1-4 epochs of capacity 0-12."""

    def build(raw):
        cuts, caps = raw
        bounds = [0] + sorted(min(c, n) for c in cuts) + [n]
        return [
            (bounds[k], bounds[k + 1], caps[k % len(caps)])
            for k in range(len(bounds) - 1)
        ]

    return st.tuples(
        st.lists(st.integers(min_value=0, max_value=max(n, 1)), max_size=3),
        st.lists(
            st.integers(min_value=0, max_value=12), min_size=1, max_size=4
        ),
    ).map(build)


@given(pages=access_patterns(max_size=200))
@settings(max_examples=100, deadline=None)
def test_opt_misses_monotone_in_capacity(pages):
    """More memory never costs OPT a miss."""
    arr = np.asarray(pages, dtype=np.int64)
    n = int(arr.size)
    next_use = compute_next_use(arr)
    previous = None
    for capacity in range(0, min(len(set(pages)), 14) + 2):
        epochs = [(0, n, capacity)] if n else []
        misses = opt_replay(arr, epochs, next_use=next_use).misses
        if previous is not None:
            assert misses <= previous
        previous = misses
    # At capacity >= distinct pages, only the mandatory cold misses remain.
    distinct = len(set(pages))
    full = opt_replay(arr, [(0, n, distinct)] if n else [], next_use=next_use)
    assert full.misses == distinct


@given(
    pages=access_patterns(max_size=200),
    capacity=st.integers(min_value=0, max_value=16),
)
@settings(max_examples=100, deadline=None)
def test_opt_never_exceeds_lru(pages, capacity):
    """OPT <= LRU at every fixed capacity, via the production profile.

    The LRU side comes from :class:`TraceProfile` -- the same hit mask
    the vectorized replay kernels consume -- so this is exactly the
    ``regret >= 0`` guarantee of the analysis layer.
    """
    arr = np.asarray(pages, dtype=np.int64)
    n = int(arr.size)
    trace = Trace(times=np.arange(n, dtype=np.float64), pages=arr)
    profile = build_profile(trace, warm_start=False)
    lru_misses = int((~profile.hit_mask(capacity)).sum())
    epochs = [(0, n, capacity)] if n else []
    opt_misses = opt_replay(arr, epochs).misses
    assert opt_misses <= lru_misses
    # Regret of the LRU run against OPT: non-negative by the line above,
    # and exactly zero whenever the working set fits (both pay only the
    # mandatory cold misses).
    if len(set(pages)) <= capacity:
        assert opt_misses == lru_misses == len(set(pages))


@given(pages=access_patterns(max_size=150), data=st.data())
@settings(max_examples=80, deadline=None)
def test_fast_equals_naive_under_dynamic_schedules(pages, data):
    arr = np.asarray(pages, dtype=np.int64)
    n = int(arr.size)
    epochs = data.draw(_capacity_schedules(n))
    prefill = data.draw(
        st.lists(st.integers(min_value=0, max_value=20), max_size=5)
    )
    fast = opt_replay(arr, epochs, initial_resident=prefill)
    slow = naive_opt_replay(arr, epochs, initial_resident=prefill)
    assert np.array_equal(fast.miss_flags, slow.miss_flags)
    assert fast.final_resident == slow.final_resident
    assert fast.misses == int(fast.miss_flags.sum())
    assert fast.hits == n - fast.misses


@given(pages=access_patterns(max_size=150))
@settings(max_examples=60, deadline=None)
def test_warm_start_never_hurts(pages):
    """Seeding OPT with resident pages can only remove misses."""
    arr = np.asarray(pages, dtype=np.int64)
    n = int(arr.size)
    if n == 0:
        return
    capacity = max(1, len(set(pages)) // 2)
    epochs = [(0, n, capacity)]
    cold = opt_replay(arr, epochs).misses
    warm = opt_replay(
        arr, epochs, initial_resident=list(set(pages))[:capacity]
    ).misses
    assert warm <= cold
