"""Differential-verification tests: oracles, strategies, runner, satellites."""
