"""CHECKS["fleet"]: passes on clean code, catches migration-accounting bugs."""

from __future__ import annotations

import numpy as np
import pytest

import repro.fleet.engine as fleet_engine
from repro.fleet.engine import MigrationRecord
from repro.verify.differential import CHECKS, run_differential
from repro.verify.strategies import VerifyCase, random_case


def _migration_case() -> VerifyCase:
    """A case whose leg-3 run is guaranteed to migrate pages.

    Every accessed page lies in [50, 90): with the conservation leg's
    4-disk array and tiny partition unit (4/8/16 pages per disk) the
    whole working set starts on the high disks, while popularity ranking
    always packs the hottest pages from rank 0 upward -- so the first
    period boundary must plan non-empty moves.
    """
    rng = np.random.default_rng(7)
    pages = np.concatenate(
        [
            np.tile(np.arange(50, 58), 10),
            rng.integers(50, 90, size=40),
        ]
    ).astype(np.int64)
    gaps = rng.exponential(5.0, size=pages.size)
    times = np.cumsum(gaps)
    return VerifyCase(
        seed=123,
        times=times,
        pages=pages,
        window_s=0.1,
        period_s=float(times[-1]) + 10.0,
        pattern="crafted-migration",
    )


def test_fleet_check_clean():
    for seed in range(6):
        assert CHECKS["fleet"](random_case(seed, max_accesses=150)) is None


def test_fleet_check_via_runner():
    report = run_differential(seeds=3, checks=["fleet"], max_accesses=150)
    assert report.ok
    assert report.outcomes[0].name == "fleet"


def test_crafted_case_actually_migrates(monkeypatch):
    """The mutation target must be exercised, or the mutation test is void."""
    real = fleet_engine._charge_migration
    calls = []

    def recording(array, now, moves):
        calls.append(len(moves))
        return real(array, now, moves)

    monkeypatch.setattr(fleet_engine, "_charge_migration", recording)
    assert CHECKS["fleet"](_migration_case()) is None
    assert calls and sum(calls) > 0


def test_mutation_dropping_destination_writes_is_caught(monkeypatch):
    """Forgetting to charge the destination disks must trip the check.

    This is the classic migration-accounting bug: the copy's reads are
    billed but the writes are free, so migration looks ~2x cheaper than
    it is.  The conservation leg's integer invariants (requests and
    bytes vs misses + migrated pages) catch it exactly.
    """

    def mutated(array, now, moves):
        src_counts = {}
        dst_counts = {}
        for _page, source, destination in moves:
            src_counts[source] = src_counts.get(source, 0) + 1
            dst_counts[destination] = dst_counts.get(destination, 0) + 1
        active_s = 0.0
        for disk_index in sorted(src_counts):
            result = array.disks[disk_index].submit(
                now, src_counts[disk_index], sequential=True
            )
            active_s += result.finish_s - result.start_s
        # BUG under test: destination writes never submitted.
        return MigrationRecord(
            time_s=now,
            moved_pages=len(moves),
            src_pages=tuple(sorted(src_counts.items())),
            dst_pages=tuple(sorted(dst_counts.items())),
            active_s=active_s,
        )

    monkeypatch.setattr(fleet_engine, "_charge_migration", mutated)
    detail = CHECKS["fleet"](_migration_case())
    assert detail is not None
    assert "conservation" in detail


def test_mutation_free_migration_energy_is_caught(monkeypatch):
    """Zeroing the recorded transfer time makes migration energy vanish."""
    real = fleet_engine._charge_migration

    def mutated(array, now, moves):
        record = real(array, now, moves)
        return MigrationRecord(
            time_s=record.time_s,
            moved_pages=record.moved_pages,
            src_pages=record.src_pages,
            dst_pages=record.dst_pages,
            active_s=0.0,
        )

    monkeypatch.setattr(fleet_engine, "_charge_migration", mutated)
    detail = CHECKS["fleet"](_migration_case())
    assert detail is not None


@pytest.mark.parametrize("seed", [0, 2])
def test_check_is_deterministic(seed):
    case = random_case(seed, max_accesses=150)
    assert CHECKS["fleet"](case) == CHECKS["fleet"](case)
