"""Equations (2) through (6) of the paper."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.stats.pareto import ParetoDistribution
from repro.stats.timeout_math import (
    constrained_min_timeout,
    expected_off_time,
    expected_power,
    expected_spin_downs,
    optimal_timeout,
)

alphas = st.floats(min_value=1.2, max_value=6.0)
betas = st.floats(min_value=0.1, max_value=10.0)


class TestEq2OffTime:
    def test_formula(self):
        # t_s = n_i * (beta/t_o)^(alpha-1) * beta / (alpha-1)
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        t_s = expected_off_time(dist, num_intervals=10, timeout_s=2.0)
        assert t_s == pytest.approx(10 * (1.0 / 2.0) ** 1.0 * 1.0 / 1.0)

    def test_matches_monte_carlo(self):
        dist = ParetoDistribution(alpha=2.5, beta=2.0)
        timeout = 5.0
        samples = dist.sample(400_000, np.random.default_rng(3))
        off = np.maximum(samples - timeout, 0.0)
        # Off time only accrues for intervals longer than the timeout.
        off[samples <= timeout] = 0.0
        expected = expected_off_time(dist, 1.0, timeout)
        assert off.mean() == pytest.approx(expected, rel=0.05)

    def test_decreases_with_timeout(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        values = [expected_off_time(dist, 1, t) for t in (1.0, 2.0, 5.0, 20.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_timeout_below_beta_clamps(self):
        dist = ParetoDistribution(alpha=2.0, beta=3.0)
        assert expected_off_time(dist, 1, 0.0) == expected_off_time(dist, 1, 3.0)

    def test_heavy_tail_infinite(self):
        dist = ParetoDistribution(alpha=1.0 + 1e-9, beta=1.0)
        assert math.isinf(expected_off_time(dist, 1, 2.0)) or expected_off_time(
            dist, 1, 2.0
        ) > 1e6

    def test_rejects_negative_inputs(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        with pytest.raises(FitError):
            expected_off_time(dist, -1, 2.0)
        with pytest.raises(FitError):
            expected_off_time(dist, 1, -2.0)


class TestEq3SpinDowns:
    def test_formula(self):
        # h = n_i * (beta/t_o)^alpha
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        assert expected_spin_downs(dist, 100, 10.0) == pytest.approx(1.0)

    def test_matches_survival(self):
        dist = ParetoDistribution(alpha=3.0, beta=2.0)
        h = expected_spin_downs(dist, 50, 7.0)
        assert h == pytest.approx(50 * dist.survival(7.0))

    @given(alpha=alphas, beta=betas, timeout=st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_interval_count_property(self, alpha, beta, timeout):
        dist = ParetoDistribution(alpha=alpha, beta=beta)
        h = expected_spin_downs(dist, 25, timeout)
        assert 0.0 <= h <= 25.0 + 1e-9


class TestEq4Power:
    def test_always_on_limit(self):
        # An enormous timeout means no spin-downs: power = static power.
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        power = expected_power(dist, 10, 1e12, 600.0, 6.6, 11.7)
        assert power == pytest.approx(6.6, rel=1e-3)

    def test_eq5_minimises_eq4(self):
        # The paper's optimal timeout must be the argmin of eq. (4).
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        t_opt = optimal_timeout(dist, 11.7)
        best = expected_power(dist, 10, t_opt, 600.0, 6.6, 11.7)
        for timeout in np.linspace(max(1.0, t_opt - 20), t_opt + 20, 200):
            assert best <= expected_power(dist, 10, timeout, 600.0, 6.6, 11.7) + 1e-9

    @given(alpha=alphas, beta=betas)
    @settings(max_examples=40, deadline=None)
    def test_eq5_minimises_eq4_property(self, alpha, beta):
        dist = ParetoDistribution(alpha=alpha, beta=beta)
        t_opt = optimal_timeout(dist, 11.7)
        best = expected_power(dist, 5, t_opt, 600.0, 6.6, 11.7)
        for factor in (0.5, 0.8, 1.25, 2.0):
            other = expected_power(dist, 5, t_opt * factor, 600.0, 6.6, 11.7)
            assert best <= other + 1e-9

    def test_power_non_negative(self):
        dist = ParetoDistribution(alpha=1.5, beta=0.5)
        assert expected_power(dist, 100, 1.0, 600.0, 6.6, 11.7) >= 0.0

    def test_rejects_bad_period(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        with pytest.raises(FitError):
            expected_power(dist, 1, 1.0, 0.0, 6.6, 11.7)


class TestEq5OptimalTimeout:
    def test_formula(self):
        # t_o = alpha * t_be
        dist = ParetoDistribution(alpha=3.0, beta=1.0)
        assert optimal_timeout(dist, 11.7) == pytest.approx(35.1)

    def test_grows_with_alpha(self):
        # Larger alpha = more short intervals = longer timeout (paper).
        t1 = optimal_timeout(ParetoDistribution(alpha=1.5, beta=1.0), 11.7)
        t2 = optimal_timeout(ParetoDistribution(alpha=3.0, beta=1.0), 11.7)
        assert t2 > t1

    def test_grows_with_break_even(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        assert optimal_timeout(dist, 20.0) > optimal_timeout(dist, 10.0)

    def test_rejects_bad_break_even(self):
        with pytest.raises(FitError):
            optimal_timeout(ParetoDistribution(alpha=2.0, beta=1.0), 0.0)


class TestEq6Constraint:
    def _timeout(self, **overrides):
        params = dict(
            dist=ParetoDistribution(alpha=2.0, beta=1.0),
            num_intervals=100,
            num_disk_accesses=1000,
            num_cache_accesses=100_000,
            period_s=600.0,
            transition_time_s=10.0,
            max_delayed_ratio=0.001,
        )
        params.update(overrides)
        return constrained_min_timeout(**params)

    def test_formula(self):
        # t_o >= beta * (n_i*n_d*(t_tr-0.5) / (N*T*D))^(1/alpha)
        ratio = 100 * 1000 * 9.5 / (100_000 * 600.0 * 0.001)
        expected = 1.0 * ratio ** (1 / 2.0)
        assert self._timeout() == pytest.approx(expected)

    def test_constraint_satisfied_at_floor(self):
        # At the returned timeout, the predicted delayed ratio equals D.
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        floor = self._timeout()
        delayed = (
            100 * dist.survival(floor) * (10.0 - 0.5) * 1000 / 600.0
        ) / 100_000
        assert delayed == pytest.approx(0.001, rel=1e-6)

    def test_zero_when_easily_satisfied(self):
        assert self._timeout(num_disk_accesses=1) == 0.0

    def test_zero_when_transition_fast(self):
        assert self._timeout(transition_time_s=0.4) == 0.0

    def test_zero_when_no_accesses(self):
        assert self._timeout(num_cache_accesses=0) == 0.0

    def test_grows_with_interval_count(self):
        assert self._timeout(num_intervals=1000) > self._timeout(num_intervals=100)

    def test_grows_with_access_rate(self):
        assert self._timeout(num_disk_accesses=10_000) > self._timeout()

    def test_looser_constraint_lowers_floor(self):
        assert self._timeout(max_delayed_ratio=0.01) < self._timeout()

    def test_smaller_alpha_raises_floor(self):
        # Paper Section IV-D: "The reduction of alpha requires increasing
        # t_o" -- the opposite of eq. (5)'s behaviour.
        tight = self._timeout(dist=ParetoDistribution(alpha=1.3, beta=1.0))
        loose = self._timeout(dist=ParetoDistribution(alpha=3.0, beta=1.0))
        assert tight > loose

    def test_rejects_bad_ratio(self):
        with pytest.raises(FitError):
            self._timeout(max_delayed_ratio=0.0)

    def test_rejects_bad_period(self):
        with pytest.raises(FitError):
            self._timeout(period_s=-1.0)
