"""Ski-rental competitive analysis: Karlin's 2-competitive theorem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.disk_spec import DiskSpec
from repro.errors import FitError
from repro.stats.competitive import (
    competitive_ratio,
    offline_optimal_energy,
    timeout_policy_energy,
    worst_case_ratio,
)

interval_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=60
)


@pytest.fixture(scope="module")
def spec():
    return DiskSpec()


class TestEnergies:
    def test_short_interval_costs_its_length(self, spec):
        energy = timeout_policy_energy([5.0], timeout_s=10.0, spec=spec)
        assert energy == pytest.approx(spec.static_power_watts * 5.0)

    def test_long_interval_costs_timeout_plus_round_trip(self, spec):
        t_be = spec.break_even_time_s
        energy = timeout_policy_energy([100.0], timeout_s=10.0, spec=spec)
        assert energy == pytest.approx(spec.static_power_watts * (10.0 + t_be))

    def test_offline_optimum_caps_at_break_even(self, spec):
        t_be = spec.break_even_time_s
        assert offline_optimal_energy([5.0], spec) == pytest.approx(
            spec.static_power_watts * 5.0
        )
        assert offline_optimal_energy([1000.0], spec) == pytest.approx(
            spec.static_power_watts * t_be
        )

    def test_validation(self, spec):
        with pytest.raises(FitError):
            timeout_policy_energy([-1.0], 10.0, spec)
        with pytest.raises(FitError):
            timeout_policy_energy([1.0], -1.0, spec)
        with pytest.raises(FitError):
            offline_optimal_energy([-1.0], spec)


class TestKarlinTheorem:
    @given(intervals=interval_lists)
    @settings(max_examples=200, deadline=None)
    def test_break_even_timeout_is_2_competitive(self, spec, intervals):
        """The theorem: t_o = t_be never exceeds twice the optimum."""
        ratio = competitive_ratio(intervals, spec.break_even_time_s, spec)
        assert ratio <= 2.0 + 1e-9

    @given(intervals=interval_lists)
    @settings(max_examples=100, deadline=None)
    def test_policy_never_beats_offline(self, spec, intervals):
        assert competitive_ratio(intervals, spec.break_even_time_s, spec) >= (
            1.0 - 1e-9
        )

    def test_bound_is_tight(self, spec):
        """The adversary achieves the factor of 2 in the limit: intervals
        ending just after the spin-down."""
        t_be = spec.break_even_time_s
        adversarial = [t_be * 1.000001] * 20
        ratio = competitive_ratio(adversarial, t_be, spec)
        assert ratio == pytest.approx(2.0, rel=1e-3)

    @given(factor=st.floats(min_value=0.05, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_other_timeouts_have_worse_worst_case(self, spec, factor):
        t_be = spec.break_even_time_s
        timeout = factor * t_be
        assert worst_case_ratio(timeout, spec) >= (
            worst_case_ratio(t_be, spec) - 1e-9
        )

    def test_worst_case_at_break_even_is_exactly_2(self, spec):
        assert worst_case_ratio(spec.break_even_time_s, spec) == pytest.approx(2.0)

    def test_empty_or_zero_sequences(self, spec):
        assert competitive_ratio([], 10.0, spec) == 1.0
        assert competitive_ratio([0.0, 0.0], 10.0, spec) == 1.0


class TestEndToEndConsistency:
    def test_simulated_2t_within_bound(self, fast_machine, small_trace):
        """The simulated 2T drive's static+transition energy respects the
        analytical bound computed from its own idle intervals."""
        from repro.analysis.pareto_check import idle_intervals_of_trace
        from repro.units import GB

        intervals = idle_intervals_of_trace(
            small_trace,
            memory_pages=8 * GB // fast_machine.page_bytes,
            window_s=0.0,
            warmup_fraction=0.0,
        )
        spec = fast_machine.disk
        ratio = competitive_ratio(
            intervals.lengths.tolist(), spec.break_even_time_s, spec
        )
        assert 1.0 - 1e-9 <= ratio <= 2.0 + 1e-9
