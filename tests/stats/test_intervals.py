"""Idle-interval extraction with the aggregation window."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.stats.intervals import extract_idle_intervals


class TestExtraction:
    def test_basic_gaps(self):
        idle = extract_idle_intervals([0.0, 1.0, 4.0], window_s=0.0)
        assert idle.lengths.tolist() == [1.0, 3.0]
        assert idle.num_accesses == 3
        assert idle.count == 2

    def test_aggregation_window_filters_short_gaps(self):
        # Paper Section IV-A: gaps shorter than w are not usable idleness.
        idle = extract_idle_intervals([0.0, 0.05, 1.0], window_s=0.1)
        assert idle.lengths.tolist() == [0.95]

    def test_window_boundary_inclusive(self):
        idle = extract_idle_intervals([0.0, 0.1], window_s=0.1)
        assert idle.lengths.tolist() == [pytest.approx(0.1)]

    def test_period_boundaries_add_gaps(self):
        idle = extract_idle_intervals(
            [10.0, 20.0], window_s=0.0, period_start=0.0, period_end=60.0
        )
        assert idle.lengths.tolist() == [10.0, 10.0, 40.0]

    def test_empty_accesses_whole_period_idle(self):
        idle = extract_idle_intervals(
            [], window_s=0.1, period_start=0.0, period_end=600.0
        )
        assert idle.lengths.tolist() == [600.0]
        assert idle.num_accesses == 0

    def test_empty_accesses_no_period(self):
        idle = extract_idle_intervals([], window_s=0.1)
        assert idle.count == 0
        assert idle.mean_length == 0.0
        assert idle.min_length == 0.0

    def test_statistics(self):
        idle = extract_idle_intervals([0.0, 2.0, 6.0], window_s=0.0)
        assert idle.mean_length == pytest.approx(3.0)
        assert idle.min_length == pytest.approx(2.0)
        assert idle.total_idle_time == pytest.approx(6.0)

    def test_simultaneous_accesses_no_zero_intervals(self):
        idle = extract_idle_intervals([1.0, 1.0, 2.0], window_s=0.0)
        assert idle.lengths.tolist() == [1.0]


class TestValidation:
    def test_rejects_unsorted(self):
        with pytest.raises(TraceError):
            extract_idle_intervals([1.0, 0.5], window_s=0.0)

    def test_rejects_negative_window(self):
        with pytest.raises(TraceError):
            extract_idle_intervals([0.0, 1.0], window_s=-1.0)

    def test_rejects_access_before_period(self):
        with pytest.raises(TraceError):
            extract_idle_intervals([0.0], window_s=0.0, period_start=1.0)

    def test_rejects_access_after_period(self):
        with pytest.raises(TraceError):
            extract_idle_intervals([5.0], window_s=0.0, period_end=4.0)

    def test_rejects_inverted_period(self):
        with pytest.raises(TraceError):
            extract_idle_intervals(
                [], window_s=0.0, period_start=5.0, period_end=4.0
            )


@given(
    gaps=st.lists(st.floats(min_value=1e-4, max_value=100.0), min_size=1, max_size=50),
    window=st.floats(min_value=0.0, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_filtered_intervals_respect_window_property(gaps, window):
    times = np.cumsum(np.asarray(gaps))
    idle = extract_idle_intervals(times, window_s=window)
    assert np.all(idle.lengths >= window)
    # Total filtered idle time never exceeds the span of the accesses.
    assert idle.total_idle_time <= (times[-1] - times[0]) + 1e-6
