"""Pareto distribution: functions, fitting, sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FitError
from repro.stats.pareto import (
    ALPHA_MAX,
    ParetoDistribution,
    fit_hill,
    fit_mle,
    fit_moments,
    fit_scipy,
)

alphas = st.floats(min_value=1.1, max_value=8.0)
betas = st.floats(min_value=0.01, max_value=100.0)


class TestDistributionFunctions:
    def test_pdf_zero_below_beta(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        assert dist.pdf(0.5) == 0.0
        assert dist.pdf(1.0) == 0.0
        assert dist.pdf(1.5) > 0.0

    def test_pdf_matches_paper_eq1(self):
        # f(l) = alpha * beta**alpha / l**(alpha+1)
        dist = ParetoDistribution(alpha=2.5, beta=2.0)
        x = 5.0
        assert dist.pdf(x) == pytest.approx(2.5 * 2.0**2.5 / x**3.5)

    def test_cdf_survival_complement(self):
        dist = ParetoDistribution(alpha=1.7, beta=0.3)
        for x in (0.3, 0.5, 1.0, 10.0, 1e4):
            assert dist.cdf(x) + dist.survival(x) == pytest.approx(1.0)

    def test_mean_formula(self):
        # mean = alpha*beta/(alpha-1), the basis of the paper's estimator
        dist = ParetoDistribution(alpha=3.0, beta=2.0)
        assert dist.mean == pytest.approx(3.0)

    def test_mean_infinite_at_alpha_below_one(self):
        dist = ParetoDistribution(alpha=0.9, beta=1.0)
        assert math.isinf(dist.mean)

    def test_variance_formula(self):
        dist = ParetoDistribution(alpha=3.0, beta=1.0)
        expected = 3.0 / ((2.0**2) * 1.0)
        assert dist.variance == pytest.approx(expected)

    def test_variance_infinite_at_alpha_2(self):
        assert math.isinf(ParetoDistribution(alpha=2.0, beta=1.0).variance)

    def test_ppf_inverts_cdf(self):
        dist = ParetoDistribution(alpha=2.2, beta=1.5)
        for q in (0.0, 0.1, 0.5, 0.9, 0.999):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_ppf_rejects_bad_quantile(self):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        with pytest.raises(FitError):
            dist.ppf(1.0)
        with pytest.raises(FitError):
            dist.ppf(-0.1)

    def test_mean_excess_is_linear_in_threshold(self):
        dist = ParetoDistribution(alpha=3.0, beta=1.0)
        assert dist.mean_excess(2.0) == pytest.approx(1.0)
        assert dist.mean_excess(4.0) == pytest.approx(2.0)

    @given(alpha=alphas, beta=betas)
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_property(self, alpha, beta):
        dist = ParetoDistribution(alpha=alpha, beta=beta)
        xs = np.linspace(beta, beta * 50, 25)
        cdfs = [dist.cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert all(0.0 <= c < 1.0 for c in cdfs)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(FitError):
            ParetoDistribution(alpha=0.0, beta=1.0)
        with pytest.raises(FitError):
            ParetoDistribution(alpha=1.0, beta=0.0)


class TestSampling:
    def test_samples_above_beta(self, rng):
        dist = ParetoDistribution(alpha=2.0, beta=3.0)
        samples = dist.sample(1000, rng)
        assert samples.min() >= 3.0

    def test_sample_mean_converges(self, rng):
        dist = ParetoDistribution(alpha=4.0, beta=1.0)
        samples = dist.sample(100_000, rng)
        assert samples.mean() == pytest.approx(dist.mean, rel=0.05)

    def test_empty_sample(self, rng):
        dist = ParetoDistribution(alpha=2.0, beta=1.0)
        assert dist.sample(0, rng).size == 0

    def test_negative_sample_size_rejected(self, rng):
        with pytest.raises(FitError):
            ParetoDistribution(alpha=2.0, beta=1.0).sample(-1, rng)


class TestMomentsFit:
    """The paper's estimator: alpha = mean / (mean - beta)."""

    def test_exact_on_constructed_sample(self):
        # mean 3, min 1 -> alpha = 3 / (3 - 1) = 1.5
        fit = fit_moments([1.0, 3.0, 5.0])
        assert fit.beta == 1.0
        assert fit.alpha == pytest.approx(1.5)

    def test_beta_defaults_to_minimum(self):
        fit = fit_moments([2.0, 4.0, 9.0])
        assert fit.beta == 2.0

    def test_explicit_beta(self):
        fit = fit_moments([2.0, 4.0], beta=1.0)
        assert fit.alpha == pytest.approx(3.0 / 2.0)

    def test_degenerate_sample_clamps_alpha(self):
        fit = fit_moments([2.0, 2.0, 2.0])
        assert fit.alpha == ALPHA_MAX

    @given(alpha=st.floats(min_value=1.5, max_value=5.0), beta=betas)
    @settings(max_examples=25, deadline=None)
    def test_recovers_parameters_property(self, alpha, beta):
        dist = ParetoDistribution(alpha=alpha, beta=beta)
        samples = dist.sample(50_000, np.random.default_rng(7))
        fit = fit_moments(samples)
        assert fit.alpha == pytest.approx(alpha, rel=0.25)
        assert fit.beta == pytest.approx(beta, rel=0.05)

    def test_rejects_empty(self):
        with pytest.raises(FitError):
            fit_moments([])

    def test_rejects_nonpositive(self):
        with pytest.raises(FitError):
            fit_moments([1.0, -2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(FitError):
            fit_moments([1.0, float("nan")])

    def test_rejects_bad_beta(self):
        with pytest.raises(FitError):
            fit_moments([1.0, 2.0], beta=0.0)


class TestOtherFits:
    def test_mle_recovers_alpha(self, rng):
        dist = ParetoDistribution(alpha=2.5, beta=1.0)
        fit = fit_mle(dist.sample(50_000, rng))
        assert fit.alpha == pytest.approx(2.5, rel=0.05)

    def test_hill_recovers_alpha(self, rng):
        dist = ParetoDistribution(alpha=2.5, beta=1.0)
        fit = fit_hill(dist.sample(50_000, rng))
        assert fit.alpha == pytest.approx(2.5, rel=0.1)

    def test_scipy_cross_check(self, rng):
        dist = ParetoDistribution(alpha=2.5, beta=1.0)
        fit = fit_scipy(dist.sample(20_000, rng))
        assert fit.alpha == pytest.approx(2.5, rel=0.1)
        assert fit.beta == pytest.approx(1.0, rel=0.05)

    def test_hill_rejects_bad_fraction(self):
        with pytest.raises(FitError):
            fit_hill([1.0, 2.0], tail_fraction=0.0)

    def test_estimators_agree_on_clean_data(self, rng):
        dist = ParetoDistribution(alpha=3.0, beta=2.0)
        samples = dist.sample(80_000, rng)
        fits = [fit_moments(samples), fit_mle(samples), fit_hill(samples)]
        alphas_found = [f.alpha for f in fits]
        assert max(alphas_found) - min(alphas_found) < 0.5
