"""Disk service-time model and bandwidth table."""

from __future__ import annotations

import pytest

from repro.config.disk_spec import DiskSpec
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.units import KB, MB


@pytest.fixture()
def service():
    return ServiceModel(DiskSpec(), page_bytes=4 * KB)


class TestServiceTimes:
    def test_random_overhead_components(self, service):
        spec = service.spec
        expected = (
            spec.avg_seek_time_s
            + spec.avg_rotational_latency_s
            + spec.controller_overhead_s
        )
        assert service.random_overhead_s == pytest.approx(expected)

    def test_first_page_includes_transfer(self, service):
        expected = service.random_overhead_s + 4 * KB / (58 * MB)
        assert service.first_page_time() == pytest.approx(expected)

    def test_continuation_is_cheap(self, service):
        assert service.continuation_time() < service.first_page_time() / 10

    def test_multi_page_request(self, service):
        assert service.service_time(3) == pytest.approx(
            service.first_page_time() + 2 * service.continuation_time()
        )

    def test_sequential_request_skips_positioning(self, service):
        assert service.service_time(2, sequential=True) == pytest.approx(
            2 * service.continuation_time()
        )

    def test_rejects_empty_request(self, service):
        with pytest.raises(SimulationError):
            service.service_time(0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(SimulationError):
            ServiceModel(DiskSpec(), page_bytes=0)


class TestBandwidthTable:
    def test_monotone_increasing(self, service):
        table = service.bandwidth_table([1, 4, 16, 64, 256])
        rates = list(table.values())
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_large_requests_approach_media_rate(self, service):
        rate = service.effective_rate(100_000)
        assert rate == pytest.approx(58 * MB, rel=0.1)

    def test_small_random_requests_are_seek_bound(self, service):
        # A 4-kB random read on a 2004 disk moves well under 1 MB/s.
        assert service.effective_rate(1) < 0.5 * MB

    def test_effective_rate_definition(self, service):
        n = 8
        assert service.effective_rate(n) == pytest.approx(
            n * 4 * KB / service.service_time(n)
        )
