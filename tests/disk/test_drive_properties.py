"""Property-based invariants of the drive's state machine.

Random arrival sequences with random timeout changes must always satisfy:
FCFS ordering, latency >= service time, wake delays bounded by the full
round trip, time conservation at finalize, and energy bounds.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.disk_spec import DiskSpec
from repro.disk.drive import SimDisk
from repro.disk.service import ServiceModel
from repro.units import KB

arrival_gaps = st.lists(
    st.floats(min_value=0.0, max_value=60.0), min_size=1, max_size=30
)
timeouts = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=40.0)
)


def make_disk():
    spec = DiskSpec()
    return spec, SimDisk(spec, ServiceModel(spec, page_bytes=4 * KB))


@given(gaps=arrival_gaps, timeout=timeouts)
@settings(max_examples=100, deadline=None)
def test_latency_and_ordering_invariants(gaps, timeout):
    spec, disk = make_disk()
    disk.set_timeout(0.0, timeout)
    service = disk.service.service_time(1)
    now = 0.0
    previous_finish = 0.0
    for gap in gaps:
        now += gap
        result = disk.submit(now, 1)
        # FCFS: completions never reorder.
        assert result.finish_s >= previous_finish
        previous_finish = result.finish_s
        # A request is never faster than its service time.
        assert result.latency_s >= service - 1e-12
        # Wake delay is bounded by the full round trip.
        assert 0.0 <= result.wake_delay_s <= spec.transition_time_s + 1e-9
        # The wake delay is part of the latency.
        assert result.latency_s >= result.wake_delay_s - 1e-12


@given(gaps=arrival_gaps, timeout=timeouts)
@settings(max_examples=100, deadline=None)
def test_time_conservation_property(gaps, timeout):
    spec, disk = make_disk()
    disk.set_timeout(0.0, timeout)
    now = 0.0
    for gap in gaps:
        now += gap
        disk.submit(now, 1)
    end = now + 100.0
    disk.finalize(end)
    accounted = (
        disk.energy.active_s
        + disk.energy.idle_s
        + disk.energy.standby_s
        + disk.energy.transition_s
    )
    # Conservation up to one unconsumed spin-up (a cycle that never woke).
    assert accounted == pytest.approx(end, abs=spec.spin_up_time_s + 1e-6)
    assert accounted >= end - 1e-6


@given(
    gaps=arrival_gaps,
    first_timeout=timeouts,
    second_timeout=timeouts,
)
@settings(max_examples=60, deadline=None)
def test_energy_bounds_with_midstream_timeout_change(
    gaps, first_timeout, second_timeout
):
    spec, disk = make_disk()
    disk.set_timeout(0.0, first_timeout)
    now = 0.0
    for index, gap in enumerate(gaps):
        now += gap
        if index == len(gaps) // 2:
            disk.set_timeout(now, second_timeout)
        disk.submit(now, 1)
    end = now + 50.0
    disk.finalize(end)
    total = disk.energy.total_joules(spec)
    lower = spec.mode_power_watts["standby"] * end
    upper = (
        spec.mode_power_watts["active"] * (end + spec.transition_time_s)
        + disk.energy.spin_down_cycles * spec.transition_energy_joules
    )
    assert lower - 1e-6 <= total <= upper + 1e-6


@given(gaps=arrival_gaps)
@settings(max_examples=50, deadline=None)
def test_always_on_never_spins_down(gaps):
    _, disk = make_disk()
    now = 0.0
    for gap in gaps:
        now += gap
        result = disk.submit(now, 1)
        assert result.wake_delay_s == 0.0
    disk.finalize(now + 1000.0)
    assert disk.energy.spin_down_cycles == 0
    assert disk.energy.standby_s == 0.0
