"""Seek curve calibration and position-aware pricing."""

from __future__ import annotations

import pytest

from repro.config.disk_spec import DiskSpec
from repro.disk.positioned import PositionedServiceModel
from repro.disk.seek import SeekModel
from repro.errors import ConfigError, SimulationError
from repro.units import MB


class TestSeekModel:
    @pytest.fixture(scope="class")
    def seek(self):
        return SeekModel.calibrated(
            track_to_track_s=1e-3,
            average_s=8.5e-3,
            full_stroke_s=18e-3,
            num_cylinders=90_000,
        )

    def test_anchors_hit(self, seek):
        assert seek.seek_time(1) == pytest.approx(1e-3, rel=1e-6)
        assert seek.seek_time(90_000 // 3) == pytest.approx(8.5e-3, rel=1e-3)
        assert seek.seek_time(89_999) == pytest.approx(18e-3, rel=1e-6)

    def test_zero_distance_free(self, seek):
        assert seek.seek_time(0) == 0.0

    def test_monotone(self, seek):
        times = [seek.seek_time(d) for d in (1, 10, 100, 1000, 10_000, 80_000)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_average_random_seek_near_datasheet(self, seek):
        assert seek.average_random_seek() == pytest.approx(8.5e-3, rel=0.25)

    def test_negative_distance_rejected(self, seek):
        with pytest.raises(ConfigError):
            seek.seek_time(-1)

    def test_calibration_validation(self):
        with pytest.raises(ConfigError):
            SeekModel.calibrated(2e-3, 1e-3, 18e-3, 90_000)  # avg < t2t
        with pytest.raises(ConfigError):
            SeekModel.calibrated(1e-3, 8e-3, 18e-3, 4)  # too few cylinders


class TestPositionedModel:
    @pytest.fixture()
    def model(self, machine):
        return PositionedServiceModel(machine.disk, machine.page_bytes)

    def test_same_cylinder_streaming_is_cheap(self, model):
        first = model.price(0)
        again = model.price(0)
        assert again.seek_s < first.seek_s or first.seek_s == again.seek_s
        assert again.rotation_s == 0.0
        assert again.total_s < first.total_s or first.rotation_s == 0.0

    def test_long_jump_costs_more_than_neighbour(self, model):
        model.price(0)
        pages_total = model.geometry.capacity_bytes // model.page_bytes
        far = model.price(int(pages_total * 0.9))
        model.reset_head(0)
        model.price(0)
        near = model.price(1)
        assert far.seek_s > near.seek_s

    def test_outer_data_streams_faster(self, model):
        pages_total = model.geometry.capacity_bytes // model.page_bytes
        outer = model.price(0, num_pages=4)
        inner = model.price(int(pages_total * 0.98), num_pages=4)
        assert outer.transfer_s < inner.transfer_s

    def test_head_moves(self, model):
        pages_total = model.geometry.capacity_bytes // model.page_bytes
        cost = model.price(int(pages_total * 0.5))
        assert model.head_cylinder == cost.cylinder
        assert cost.cylinder > 0

    def test_pages_beyond_capacity_wrap(self, model):
        pages_total = model.geometry.capacity_bytes // model.page_bytes
        wrapped = model.cylinder_of_page(pages_total + 3)
        assert wrapped == model.cylinder_of_page(3)

    def test_average_random_page_near_analytic_model(self, machine):
        """The positioned model and the calibrated analytic model agree
        on the average one-page random service time within a factor."""
        import numpy as np

        from repro.disk.service import ServiceModel

        model = PositionedServiceModel(machine.disk, machine.page_bytes)
        analytic = ServiceModel(machine.disk, machine.page_bytes)
        rng = np.random.default_rng(9)
        pages_total = model.geometry.capacity_bytes // machine.page_bytes
        samples = [
            model.service_time(int(rng.integers(0, pages_total)))
            for _ in range(300)
        ]
        positioned_avg = float(np.mean(samples))
        # The analytic model is calibrated to 10.4 MB/s for one page; the
        # geometric model reflects the real drive (~60 MB/s media), so it
        # is faster -- but both sit in the tens-of-ms-to-sub-second range
        # and the geometric one must not be slower.
        assert positioned_avg <= analytic.service_time(1)
        assert positioned_avg > machine.disk.avg_seek_time_s

    def test_validation(self, model):
        with pytest.raises(SimulationError):
            model.price(-1)
        with pytest.raises(SimulationError):
            model.price(0, num_pages=0)
        with pytest.raises(SimulationError):
            model.reset_head(10**9)


class TestEngineIntegration:
    def test_geometry_run_matches_analytic_counts(self, fast_machine, small_trace):
        from repro.memory.system import NapMemorySystem
        from repro.policies.fixed_timeout import FixedTimeoutPolicy
        from repro.sim.engine import SimulationEngine
        from repro.units import GB

        def run(use_geometry):
            memory = NapMemorySystem(fast_machine.memory, 8 * GB)
            engine = SimulationEngine(
                fast_machine,
                memory,
                disk_policy=FixedTimeoutPolicy(11.7),
                use_geometry=use_geometry,
            )
            return engine.run(small_trace, duration_s=480.0)

        analytic = run(False)
        geometric = run(True)
        # Same cache: identical miss streams; only timings differ.
        assert geometric.disk_page_accesses == analytic.disk_page_accesses
        assert geometric.disk_energy.active_s != analytic.disk_energy.active_s
