"""Disk time/energy bookkeeping."""

from __future__ import annotations

import pytest

from repro.config.disk_spec import DiskSpec
from repro.disk.energy import DiskEnergy
from repro.errors import SimulationError


class TestAccounting:
    def test_total_joules(self):
        spec = DiskSpec()
        energy = DiskEnergy()
        energy.add_time("active", 10.0)
        energy.add_time("idle", 100.0)
        energy.add_time("standby", 50.0)
        energy.spin_down_cycles = 2
        expected = 10 * 12.5 + 100 * 7.5 + 50 * 0.9 + 2 * 77.5
        assert energy.total_joules(spec) == pytest.approx(expected)

    def test_breakdown_matches_total(self):
        spec = DiskSpec()
        energy = DiskEnergy()
        energy.add_time("active", 3.0)
        energy.add_time("idle", 4.0)
        energy.add_time("standby", 5.0)
        energy.add_time("transition", 10.0)
        energy.spin_down_cycles = 1
        breakdown = energy.breakdown_joules(spec)
        assert sum(breakdown.values()) == pytest.approx(energy.total_joules(spec))

    def test_utilization(self):
        energy = DiskEnergy()
        energy.add_time("active", 25.0)
        assert energy.utilization(100.0) == pytest.approx(0.25)
        assert energy.utilization(0.0) == 0.0

    def test_accounted_time(self):
        energy = DiskEnergy()
        energy.add_time("active", 1.0)
        energy.add_time("idle", 2.0)
        assert energy.accounted_s == pytest.approx(3.0)

    def test_tiny_negative_tolerated(self):
        energy = DiskEnergy()
        energy.add_time("idle", -1e-12)
        assert energy.idle_s == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            DiskEnergy().add_time("idle", -1.0)

    def test_rejects_unknown_category(self):
        with pytest.raises(SimulationError):
            DiskEnergy().add_time("warp", 1.0)

    def test_minus_window(self):
        energy = DiskEnergy()
        energy.add_time("active", 5.0)
        snap = energy.snapshot()
        energy.add_time("active", 3.0)
        energy.spin_down_cycles += 1
        delta = energy.minus(snap)
        assert delta.active_s == pytest.approx(3.0)
        assert delta.spin_down_cycles == 1
