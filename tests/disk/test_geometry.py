"""Zoned geometry and the LBA mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.geometry import DiskGeometry
from repro.errors import ConfigError
from repro.units import GB


@pytest.fixture(scope="module")
def geometry():
    return DiskGeometry()


class TestProfile:
    def test_outer_tracks_hold_more(self, geometry):
        assert geometry.sectors_per_track(0) == geometry.sectors_outer
        assert geometry.sectors_per_track(
            geometry.num_cylinders - 1
        ) == pytest.approx(geometry.sectors_inner)
        mid = geometry.sectors_per_track(geometry.num_cylinders // 2)
        assert geometry.sectors_inner < mid < geometry.sectors_outer

    def test_capacity_near_160_gb(self, geometry):
        # The default approximates the paper's 160-GB Barracuda.
        assert geometry.capacity_bytes == pytest.approx(160 * GB, rel=0.06)

    def test_cumulative_consistency(self, geometry):
        # sectors_before(k+1) - sectors_before(k) = cylinder_sectors(k).
        for cylinder in (0, 1, 1000, geometry.num_cylinders - 2):
            delta = geometry.sectors_before(cylinder + 1) - geometry.sectors_before(
                cylinder
            )
            assert delta == pytest.approx(geometry.cylinder_sectors(cylinder))

    def test_flat_profile_supported(self):
        flat = DiskGeometry(sectors_outer=600, sectors_inner=600)
        assert flat.cylinder_of_lba(600 * 4 * 5) == 5


class TestLbaMapping:
    def test_first_and_last_lba(self, geometry):
        assert geometry.cylinder_of_lba(0) == 0
        assert (
            geometry.cylinder_of_lba(geometry.total_sectors - 1)
            == geometry.num_cylinders - 1
        )

    def test_lba_outside_rejected(self, geometry):
        with pytest.raises(ConfigError):
            geometry.cylinder_of_lba(-1)
        with pytest.raises(ConfigError):
            geometry.cylinder_of_lba(geometry.total_sectors)

    @given(fraction=st.floats(min_value=0.0, max_value=0.999999))
    @settings(max_examples=100, deadline=None)
    def test_inverse_property(self, geometry, fraction):
        """cylinder_of_lba inverts sectors_before exactly."""
        lba = int(fraction * geometry.total_sectors)
        cylinder = geometry.cylinder_of_lba(lba)
        assert geometry.sectors_before(cylinder) <= lba
        if cylinder < geometry.num_cylinders - 1:
            assert lba < geometry.sectors_before(cylinder + 1)

    def test_monotone_mapping(self, geometry):
        lbas = [0, 10**6, 10**7, 10**8, geometry.total_sectors - 1]
        cylinders = [geometry.cylinder_of_lba(lba) for lba in lbas]
        assert cylinders == sorted(cylinders)

    def test_byte_addressing(self, geometry):
        assert geometry.lba_of_byte(0) == 0
        assert geometry.lba_of_byte(512) == 1
        assert geometry.lba_of_byte(1023) == 1
        with pytest.raises(ConfigError):
            geometry.lba_of_byte(geometry.capacity_bytes)


class TestMediaRate:
    def test_outer_zone_faster(self, geometry):
        outer = geometry.media_rate_at(0, rpm=7200)
        inner = geometry.media_rate_at(geometry.num_cylinders - 1, rpm=7200)
        assert outer == pytest.approx(2 * inner, rel=0.01)

    def test_outer_rate_realistic(self, geometry):
        # ~1170 sectors * 512 B * 120 rev/s = ~68 MB/s outer zone.
        rate = geometry.media_rate_at(0, rpm=7200)
        assert 50e6 < rate < 90e6

    def test_bad_rpm(self, geometry):
        with pytest.raises(ConfigError):
            geometry.media_rate_at(0, rpm=0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_cylinders": 1},
            {"num_heads": 0},
            {"sectors_inner": 0},
            {"sectors_inner": 2000},  # > outer
            {"sector_bytes": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            DiskGeometry(**kwargs)
