"""SimDisk: power-state timing, wake latency, FCFS queueing, energy."""

from __future__ import annotations

import math

import pytest

from repro.config.disk_spec import DiskSpec
from repro.disk.drive import SimDisk
from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.units import KB


@pytest.fixture()
def spec():
    return DiskSpec()


@pytest.fixture()
def disk(spec):
    return SimDisk(spec, ServiceModel(spec, page_bytes=4 * KB))


def svc(disk, n=1, sequential=False):
    return disk.service.service_time(n, sequential)


class TestAlwaysOn:
    def test_request_latency_is_service_time(self, disk):
        result = disk.submit(5.0, 1)
        assert result.latency_s == pytest.approx(svc(disk))
        assert result.wake_delay_s == 0.0

    def test_idle_time_accounted(self, disk):
        disk.submit(0.0, 1)
        disk.finalize(100.0)
        assert disk.energy.idle_s == pytest.approx(100.0 - svc(disk))
        assert disk.energy.active_s == pytest.approx(svc(disk))
        assert disk.energy.spin_down_cycles == 0

    def test_fcfs_queueing(self, disk):
        first = disk.submit(0.0, 1)
        second = disk.submit(0.0, 1)
        assert second.start_s == pytest.approx(first.finish_s)
        assert second.latency_s == pytest.approx(2 * svc(disk))

    def test_sequential_request_cheaper(self, disk):
        disk.submit(0.0, 1)
        fast = disk.submit(1.0, 1, sequential=True)
        assert fast.latency_s == pytest.approx(svc(disk, sequential=True))
        assert fast.latency_s < svc(disk) / 5


class TestSpinDown:
    def test_spin_down_after_timeout(self, disk):
        disk.set_timeout(0.0, 10.0)
        disk.submit(0.0, 1)
        disk.advance(50.0)
        assert disk.is_spun_down
        assert disk.energy.spin_down_cycles == 1
        # Idle time ran from completion to the spin-down decision.
        assert disk.energy.idle_s == pytest.approx(10.0)

    def test_no_spin_down_before_timeout(self, disk):
        disk.set_timeout(0.0, 10.0)
        disk.submit(0.0, 1)
        disk.advance(5.0)
        assert not disk.is_spun_down

    def test_wake_on_demand(self, disk, spec):
        disk.set_timeout(0.0, 10.0)
        done = disk.submit(0.0, 1).finish_s
        result = disk.submit(100.0, 1)
        # Spin-down at done+10, standby until 100, spin-up 8 s.
        assert result.wake_delay_s == pytest.approx(spec.spin_up_time_s)
        assert result.latency_s == pytest.approx(
            spec.spin_up_time_s + svc(disk)
        )
        assert disk.energy.standby_s == pytest.approx(
            100.0 - (done + 10.0 + spec.spin_down_time_s)
        )
        assert not disk.is_spun_down

    def test_arrival_during_spin_down_waits_full_round_trip(self, disk, spec):
        disk.set_timeout(0.0, 10.0)
        done = disk.submit(0.0, 1).finish_s
        arrival = done + 10.0 + 1.0  # 1 s into the 2-s spin-down
        result = disk.submit(arrival, 1)
        expected_ready = done + 10.0 + spec.spin_down_time_s + spec.spin_up_time_s
        assert result.start_s == pytest.approx(expected_ready)
        assert result.wake_delay_s == pytest.approx(expected_ready - arrival)
        assert disk.energy.standby_s == pytest.approx(0.0)

    def test_timeout_zero_spins_down_immediately(self, disk):
        disk.set_timeout(0.0, 0.0)
        disk.submit(0.0, 1)
        disk.advance(1.0)
        assert disk.is_spun_down

    def test_repeated_cycles_counted(self, disk):
        disk.set_timeout(0.0, 5.0)
        for start in (0.0, 100.0, 200.0):
            disk.submit(start, 1)
        disk.advance(300.0)
        assert disk.energy.spin_down_cycles == 3


class TestTimeoutChanges:
    def test_new_timeout_applies_to_current_idle_period(self, disk):
        disk.submit(0.0, 1)  # no timeout yet: stays up
        disk.advance(50.0)
        assert not disk.is_spun_down
        disk.set_timeout(50.0, 5.0)  # idle already 50 s > 5 s
        disk.advance(51.0)
        assert disk.is_spun_down
        # But not retroactively: the spin-down starts at the set_timeout.
        assert disk.spin_down_end >= 50.0

    def test_disabling_timeout(self, disk):
        disk.set_timeout(0.0, math.inf)
        disk.submit(0.0, 1)
        disk.advance(1000.0)
        assert not disk.is_spun_down
        assert disk.timeout_s is None

    def test_rejects_negative_timeout(self, disk):
        with pytest.raises(SimulationError):
            disk.set_timeout(0.0, -1.0)


class TestAccountingIntegrity:
    def test_time_conservation_with_wake(self, disk, spec):
        disk.set_timeout(0.0, 10.0)
        disk.submit(0.0, 1)
        disk.submit(100.0, 1)
        end = 200.0
        disk.finalize(end)
        # active + idle + standby + transition covers the timeline (the
        # last idle stretch runs to `end`).
        assert disk.energy.accounted_s == pytest.approx(end, rel=1e-6)

    def test_time_conservation_while_spun_down_at_end(self, disk):
        disk.set_timeout(0.0, 10.0)
        disk.submit(0.0, 1)
        disk.finalize(500.0)
        assert disk.energy.accounted_s == pytest.approx(500.0, rel=1e-6)

    def test_checkpoint_no_double_count(self, disk):
        disk.submit(0.0, 1)
        disk.checkpoint(50.0)
        disk.checkpoint(50.0)
        disk.finalize(100.0)
        assert disk.energy.idle_s == pytest.approx(100.0 - svc(disk))

    def test_rejects_time_regression(self, disk):
        disk.advance(10.0)
        with pytest.raises(SimulationError):
            disk.advance(5.0)

    def test_energy_bounds(self, disk, spec):
        disk.set_timeout(0.0, 11.7)
        for t in (0.0, 40.0, 41.0, 200.0, 203.0, 400.0):
            disk.submit(t, 2)
        disk.finalize(600.0)
        total = disk.energy.total_joules(spec)
        lower = spec.mode_power_watts["standby"] * 600.0
        upper = (
            spec.mode_power_watts["active"] * 600.0
            + disk.energy.spin_down_cycles * spec.transition_energy_joules
        )
        assert lower <= total <= upper
