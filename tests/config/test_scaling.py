"""Granularity scaling invariants (DESIGN.md Section 5).

Everything physical must stay at its paper value; only the bookkeeping
granularity (page size) changes, and the disk's random-access rate is
recalibrated to the drive's average data rate.
"""

from __future__ import annotations

import pytest

from repro.config.machine import paper_machine
from repro.disk.service import ServiceModel
from repro.errors import ConfigError
from repro.units import GB, MB


@pytest.mark.parametrize("factor", [4, 64, 256, 1024, 4096])
class TestInvariants:
    def test_sizes_unchanged(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.memory.installed_bytes == 128 * GB
        assert machine.disk.capacity_bytes == 160 * GB

    def test_times_unchanged(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.disk.break_even_time_s == pytest.approx(11.74, abs=0.05)
        assert machine.disk.transition_time_s == 10.0
        assert machine.manager.period_s == 600.0
        assert machine.manager.aggregation_window_s == pytest.approx(0.1)

    def test_powers_unchanged(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.disk.static_power_watts == pytest.approx(6.6)
        assert machine.memory.static_power_per_mb == pytest.approx(
            0.656e-3, rel=1e-3
        )

    def test_break_even_memory_unchanged(self, factor):
        base = paper_machine()
        machine = base.scaled(factor)
        assert machine.break_even_memory_bytes == pytest.approx(
            base.break_even_memory_bytes
        )

    def test_page_grows_by_factor(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.page_bytes == 4096 * factor
        assert machine.scale == factor

    def test_bank_holds_whole_pages(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.memory.bank_bytes % machine.page_bytes == 0
        assert machine.memory.bank_bytes >= machine.page_bytes

    def test_single_page_read_achieves_average_rate(self, factor):
        machine = paper_machine().scaled(factor)
        rate = machine.single_page_service_rate()
        if machine.page_bytes / machine.disk.average_data_rate > 0.02:
            # Once the page is big enough for the calibration to engage,
            # a one-page random read must hit the drive's average rate.
            assert rate == pytest.approx(machine.disk.average_data_rate, rel=0.01)

    def test_sequential_rate_never_recalibrated(self, factor):
        machine = paper_machine().scaled(factor)
        assert machine.disk.sequential_transfer_rate == 58 * MB


class TestScalingMechanics:
    def test_scale_one_is_identity(self):
        base = paper_machine()
        assert base.scaled(1) is base

    def test_scaling_compounds(self):
        machine = paper_machine().scaled(4).scaled(256)
        assert machine.scale == 1024
        assert machine.page_bytes == 4 * MB

    def test_rejects_non_integer_factor(self):
        with pytest.raises(ConfigError):
            paper_machine().scaled(2.5)  # type: ignore[arg-type]

    def test_rejects_negative_factor(self):
        with pytest.raises(ConfigError):
            paper_machine().scaled(-2)

    def test_bandwidth_table_monotone_in_request_size(self):
        machine = paper_machine().scaled(1024)
        service = ServiceModel(machine.disk, machine.page_bytes)
        table = service.bandwidth_table([1, 2, 4, 8, 16, 64])
        rates = list(table.values())
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[0] == pytest.approx(machine.disk.average_data_rate, rel=0.01)
