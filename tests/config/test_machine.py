"""MachineConfig composition and derived quantities."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.machine import MachineConfig, paper_machine, scaled_machine
from repro.config.memory_spec import MemorySpec
from repro.errors import ConfigError
from repro.units import GB, MB


def test_break_even_memory_is_about_10_gb():
    # Paper Section V-B1: 6.6 / (0.656e-3 * 1024) ~ 10 GB.
    machine = paper_machine()
    assert machine.break_even_memory_bytes == pytest.approx(9.82 * GB, rel=0.02)


def test_enumeration_unit_must_align_with_banks():
    base = paper_machine()
    bad_manager = dataclasses.replace(
        base.manager, enumeration_unit_bytes=24 * MB
    )
    with pytest.raises(ConfigError):
        MachineConfig(memory=base.memory, disk=base.disk, manager=bad_manager)


def test_page_bytes_comes_from_memory_spec():
    machine = paper_machine()
    assert machine.page_bytes == machine.memory.page_bytes == 4096


def test_scaled_machine_factory_default():
    machine = scaled_machine()
    assert machine.scale == 1024
    assert machine.page_bytes == 4 * MB


def test_rejects_nonpositive_scale():
    base = paper_machine()
    with pytest.raises(ConfigError):
        MachineConfig(
            memory=base.memory, disk=base.disk, manager=base.manager, scale=0
        )


def test_memory_spec_unchanged_fields_survive_scaling():
    machine = paper_machine().scaled(1024)
    original = MemorySpec()
    assert machine.memory.installed_bytes == original.installed_bytes
    assert machine.memory.mode_power_watts == original.mode_power_watts
    assert machine.memory.peak_power_watts == original.peak_power_watts
