"""The disk constants must match the paper's Section V-A arithmetic."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.disk_spec import DiskSpec
from repro.errors import ConfigError


class TestPaperArithmetic:
    def test_static_power_is_6_6_watts(self):
        assert DiskSpec().static_power_watts == pytest.approx(6.6)

    def test_dynamic_power_is_5_watts(self):
        assert DiskSpec().dynamic_power_watts == pytest.approx(5.0)

    def test_break_even_time_is_11_7_seconds(self):
        # 77.5 J / 6.6 W = 11.74 s
        assert DiskSpec().break_even_time_s == pytest.approx(11.74, abs=0.05)

    def test_transition_round_trip_is_10_seconds(self):
        spec = DiskSpec()
        assert spec.transition_time_s == pytest.approx(10.0)
        assert spec.spin_down_time_s + spec.spin_up_time_s == pytest.approx(10.0)

    def test_standby_and_sleep_draw_the_same_power(self):
        spec = DiskSpec()
        assert spec.mode_power_watts["standby"] == spec.mode_power_watts["sleep"]

    def test_rotational_latency_7200rpm(self):
        spec = DiskSpec()
        assert spec.rotation_time_s == pytest.approx(60.0 / 7200.0)
        assert spec.avg_rotational_latency_s == pytest.approx(spec.rotation_time_s / 2)


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            DiskSpec(capacity_bytes=0)

    def test_rejects_mismatched_transition_split(self):
        with pytest.raises(ConfigError):
            DiskSpec(spin_down_time_s=3.0, spin_up_time_s=8.0)

    def test_rejects_missing_mode(self):
        with pytest.raises(ConfigError):
            DiskSpec(mode_power_watts={"active": 12.5, "idle": 7.5})

    def test_rejects_negative_transition_energy(self):
        with pytest.raises(ConfigError):
            DiskSpec(transition_energy_joules=-1.0)

    def test_replace_keeps_validation(self):
        spec = DiskSpec()
        changed = dataclasses.replace(spec, spin_down_time_s=5.0, spin_up_time_s=5.0)
        assert changed.transition_time_s == pytest.approx(10.0)
