"""Hardware presets."""

from __future__ import annotations

import pytest

from repro.config.presets import laptop_disk, sdram_machine, sdram_memory
from repro.units import GB, MB


class TestSdram:
    def test_rank_granularity(self):
        memory = sdram_memory()
        assert memory.bank_bytes == 512 * MB
        assert memory.num_banks == 256

    def test_per_mb_power_matches_rdram(self):
        """The paper's energy trade-off must be hardware-neutral: per-MB
        static power equals the RDRAM figure (0.656 mW/MB)."""
        memory = sdram_memory()
        assert memory.static_power_per_mb == pytest.approx(0.656e-3, rel=1e-3)

    def test_machine_composition(self):
        machine = sdram_machine()
        assert machine.manager.enumeration_unit_bytes == 512 * MB
        assert machine.break_even_memory_bytes == pytest.approx(
            9.82 * GB, rel=0.02
        )

    def test_scaled_sdram_machine(self):
        machine = sdram_machine().scaled(1024)
        assert machine.page_bytes == 4 * MB
        assert machine.memory.bank_bytes == 512 * MB

    def test_joint_runs_on_sdram(self, small_trace):
        from repro.sim.runner import run_method

        machine = sdram_machine().scaled(1024)
        result = run_method(
            "JOINT", small_trace, machine, duration_s=600.0, audit=True
        )
        assert result.decisions
        # Decisions move in 512-MB steps.
        for decision in result.decisions:
            assert decision.memory_bytes % (512 * MB) == 0


class TestLaptopDisk:
    def test_break_even_much_shorter(self):
        disk = laptop_disk()
        assert disk.break_even_time_s < 7.0
        assert disk.static_power_watts == pytest.approx(1.55)

    def test_spin_cycle_consistent(self):
        disk = laptop_disk()
        assert disk.spin_down_time_s + disk.spin_up_time_s == pytest.approx(
            disk.transition_time_s
        )
