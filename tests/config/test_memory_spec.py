"""The RDRAM constants must match the paper's Section V-A arithmetic."""

from __future__ import annotations

import pytest

from repro.config.memory_spec import MemorySpec
from repro.errors import ConfigError
from repro.units import GB, MB


class TestPaperArithmetic:
    def test_static_power_per_mb_matches_paper(self):
        # 10.5 mW / 16 MB = 0.656 mW/MB
        spec = MemorySpec()
        assert spec.static_power_per_mb == pytest.approx(0.656e-3, rel=1e-3)

    def test_dynamic_energy_per_mb_matches_paper(self):
        # 1325 mW / (1.6 GB/s) = 0.809 mJ/MB
        spec = MemorySpec()
        per_mb = spec.dynamic_energy_per_byte * MB
        assert per_mb == pytest.approx(0.809e-3, rel=1e-3)

    def test_powerdown_timeout_matches_paper(self):
        # (1325 * 30) / (312 - 3.5) = 129 us
        spec = MemorySpec()
        assert spec.powerdown_timeout_s == pytest.approx(129e-6, rel=1e-2)

    def test_bank_count(self):
        spec = MemorySpec()
        assert spec.num_banks == 128 * GB // (16 * MB) == 8192

    def test_pages_per_bank(self):
        spec = MemorySpec()
        assert spec.pages_per_bank == 16 * MB // (4 * 1024) == 4096

    def test_nap_is_default_static_mode(self):
        spec = MemorySpec()
        assert spec.mode_power_watts["nap"] == pytest.approx(10.5e-3)
        assert spec.static_power_per_byte * spec.bank_bytes == pytest.approx(
            spec.mode_power_watts["nap"]
        )

    def test_mode_power_ordering(self):
        spec = MemorySpec()
        p = spec.mode_power_watts
        assert (
            p["attention"] > p["idle"] > p["nap"] > p["powerdown"] > p["disable"]
        )


class TestValidation:
    def test_rejects_zero_installed(self):
        with pytest.raises(ConfigError):
            MemorySpec(installed_bytes=0)

    def test_rejects_bank_larger_than_installed(self):
        with pytest.raises(ConfigError):
            MemorySpec(installed_bytes=16 * MB, bank_bytes=32 * MB)

    def test_rejects_partial_banks(self):
        with pytest.raises(ConfigError):
            MemorySpec(installed_bytes=24 * MB, bank_bytes=16 * MB)

    def test_rejects_bank_not_whole_pages(self):
        with pytest.raises(ConfigError):
            MemorySpec(bank_bytes=16 * MB + 1, installed_bytes=2 * (16 * MB + 1))

    def test_dynamic_energy_per_access_scales_with_page(self):
        small = MemorySpec()
        big = MemorySpec(page_bytes=16 * 1024)
        assert big.dynamic_energy_per_access == pytest.approx(
            4 * small.dynamic_energy_per_access
        )
