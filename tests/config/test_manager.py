"""ManagerConfig defaults (paper Table II) and validation."""

from __future__ import annotations

import pytest

from repro.config.manager import ManagerConfig
from repro.errors import ConfigError
from repro.units import MB


def test_paper_table2_defaults():
    cfg = ManagerConfig()
    assert cfg.period_s == 600.0  # T = 10 min
    assert cfg.aggregation_window_s == pytest.approx(0.1)  # w
    assert cfg.max_utilization == pytest.approx(0.10)  # U
    assert cfg.max_delayed_ratio == pytest.approx(0.001)  # D
    assert cfg.long_latency_threshold_s == pytest.approx(0.5)
    assert cfg.enumeration_unit_bytes == 16 * MB


@pytest.mark.parametrize(
    "kwargs",
    [
        {"period_s": 0.0},
        {"period_s": -1.0},
        {"aggregation_window_s": -0.1},
        {"max_utilization": 0.0},
        {"max_utilization": 1.5},
        {"max_delayed_ratio": 0.0},
        {"max_delayed_ratio": 2.0},
        {"long_latency_threshold_s": 0.0},
        {"enumeration_unit_bytes": 0},
        {"min_memory_bytes": 0},
        {"max_candidates": 1},
    ],
)
def test_rejects_invalid(kwargs):
    with pytest.raises(ConfigError):
        ManagerConfig(**kwargs)
