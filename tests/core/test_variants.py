"""Joint-manager ablation variants (DATE-2005 mode, single-knob modes)."""

from __future__ import annotations

import pytest

from repro.core.joint import JointPowerManager
from repro.policies.registry import parse_method
from repro.sim.runner import run_method
from repro.units import GB


class TestVariantConstruction:
    def test_timeout_only_pins_memory(self, fast_machine):
        manager = JointPowerManager(fast_machine, adapt_memory=False)
        assert manager.candidates_bytes == [fast_machine.memory.installed_bytes]
        decision = manager.end_period(fast_machine.manager.period_s)
        assert decision.memory_bytes == fast_machine.memory.installed_bytes

    def test_resize_only_keeps_2t_timeout(self, fast_machine):
        manager = JointPowerManager(fast_machine, adapt_timeout=False)
        decision = manager.end_period(fast_machine.manager.period_s)
        assert decision.timeout_s == pytest.approx(
            fast_machine.disk.break_even_time_s
        )

    def test_registry_round_trip(self):
        assert parse_method("DATE2005").enforce_constraints is False
        assert parse_method("joint-to").adapt_memory is False
        assert parse_method("Joint-Mem").adapt_timeout is False


class TestVariantBehaviour:
    @pytest.fixture(scope="class")
    def results(self, fast_machine, small_trace):
        return {
            name: run_method(
                name,
                small_trace,
                fast_machine,
                duration_s=600.0,
                warmup_s=120.0,
                audit=True,
            )
            for name in ("JOINT", "JOINT-NC", "JOINT-MEM", "JOINT-TO")
        }

    def test_timeout_only_never_resizes(self, results):
        sizes = {d.memory_bytes for d in results["JOINT-TO"].decisions}
        assert sizes == {128 * GB}

    def test_timeout_only_spins_down(self, results):
        assert results["JOINT-TO"].spin_down_cycles > 0

    def test_resize_only_uses_break_even_timeout(self, results, fast_machine):
        for decision in results["JOINT-MEM"].decisions:
            assert decision.timeout_s == pytest.approx(
                fast_machine.disk.break_even_time_s
            )

    def test_full_joint_beats_timeout_only(self, results):
        # Timeout-only pays for all 128 GB of memory.
        assert (
            results["JOINT"].total_energy_j
            < results["JOINT-TO"].total_energy_j
        )

    def test_variants_resize_memory_down(self, results):
        for name in ("JOINT", "JOINT-NC", "JOINT-MEM"):
            final = results[name].decisions[-1].memory_bytes
            assert final < 128 * GB, name
