"""JointPowerManager: the per-period decision loop."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.machine import MachineConfig, paper_machine
from repro.core.joint import JointPowerManager
from repro.errors import SimulationError
from repro.units import GB


@pytest.fixture()
def machine():
    base = paper_machine().scaled(1024)
    manager = dataclasses.replace(base.manager, max_candidates=16)
    return MachineConfig(
        memory=base.memory, disk=base.disk, manager=manager, scale=base.scale
    )


def feed_loop(manager, pages, start_s, period_s, rate_per_s=10.0):
    """Feed a cyclic page pattern for one period."""
    t = start_s
    i = 0
    dt = 1.0 / rate_per_s
    while t < start_s + period_s:
        manager.record_access(t, pages[i % len(pages)])
        t += dt
        i += 1
    return manager.end_period(start_s + period_s)


class TestDecisions:
    def test_initial_state(self, machine):
        manager = JointPowerManager(machine)
        assert manager.memory_bytes == machine.memory.installed_bytes
        assert manager.timeout_s == pytest.approx(machine.disk.break_even_time_s)
        assert manager.candidates_bytes[-1] == machine.memory.installed_bytes

    def test_small_hot_set_shrinks_memory(self, machine):
        manager = JointPowerManager(machine)
        hot = list(range(64))  # 64 pages = 256 MB hot set
        decision = feed_loop(manager, hot, 0.0, 600.0)
        assert decision.memory_bytes < 16 * GB
        assert manager.memory_bytes == decision.memory_bytes

    def test_silent_period_minimises_memory(self, machine):
        manager = JointPowerManager(machine)
        decision = manager.end_period(600.0)
        assert decision.memory_bytes == manager.candidates_bytes[0]
        assert decision.observed_accesses == 0

    def test_decisions_accumulate(self, machine):
        manager = JointPowerManager(machine)
        feed_loop(manager, list(range(32)), 0.0, 600.0)
        feed_loop(manager, list(range(32)), 600.0, 600.0)
        assert [d.period_index for d in manager.decisions] == [0, 1]
        assert manager.decisions[1].start_s == 600.0

    def test_lru_history_survives_periods(self, machine):
        # Table IV note: the LRU list is not reset every period, so a
        # pattern learned in period 1 is not cold in period 2.
        manager = JointPowerManager(machine)
        pages = list(range(128))
        feed_loop(manager, pages, 0.0, 600.0)
        first = manager.record_access(600.5, pages[-1])
        assert first >= 0  # known page, not a cold miss

    def test_predictor_resets_each_period(self, machine):
        manager = JointPowerManager(machine)
        feed_loop(manager, list(range(8)), 0.0, 600.0)
        decision = manager.end_period(1200.0)
        assert decision.observed_accesses == 0

    def test_period_end_before_start_rejected(self, machine):
        manager = JointPowerManager(machine)
        manager.end_period(600.0)
        with pytest.raises(SimulationError):
            manager.end_period(300.0)

    def test_initial_memory_must_be_candidate(self, machine):
        with pytest.raises(SimulationError):
            JointPowerManager(machine, initial_memory_bytes=12345)

    def test_prefill_warms_tracker(self, machine):
        manager = JointPowerManager(machine)
        manager.prefill([1, 2, 3])
        assert manager.record_access(0.0, 3) == 0
        assert manager.record_access(0.1, 1) == 2


class TestTimeoutSelection:
    def test_sparse_traffic_allows_spin_down(self, machine):
        # One access per 60 s: long intervals, spin-down worthwhile.
        manager = JointPowerManager(machine)
        decision = feed_loop(
            manager, list(range(4)), 0.0, 600.0, rate_per_s=1 / 60.0
        )
        chosen = decision.evaluations[
            [e.capacity_bytes for e in decision.evaluations].index(
                decision.memory_bytes
            )
        ]
        assert chosen.prediction.num_disk_accesses >= 0
        # A timeout was selected (finite) for the chosen candidate.
        assert decision.timeout_s is None or decision.timeout_s > 0

    def test_all_evaluations_returned_ascending(self, machine):
        manager = JointPowerManager(machine)
        decision = feed_loop(manager, list(range(16)), 0.0, 600.0)
        capacities = [e.capacity_bytes for e in decision.evaluations]
        assert capacities == sorted(capacities)
        assert len(capacities) == len(manager.candidates_bytes)


class TestBatchFeeding:
    def test_prefill_depths_match_scalar_loop(self, machine):
        # The batched prefill must leave the tracker in exactly the state
        # the old per-page loop produced: subsequent accesses see the
        # same depths.
        import numpy as np

        rng = np.random.default_rng(42)
        warm = rng.integers(0, 200, 500).tolist()
        probe = rng.integers(0, 250, 200).tolist()

        batched = JointPowerManager(machine)
        batched.prefill(warm)

        from repro.cache.stack_distance import StackDistanceTracker

        scalar_tracker = StackDistanceTracker()
        for page in warm:
            scalar_tracker.access(page)

        for i, page in enumerate(probe):
            assert batched._tracker.access(page) == scalar_tracker.access(page), i

    def test_record_profiled_matches_record_access(self, machine):
        # Feeding the per-period log from precomputed depths must produce
        # the identical decision to the live record_access loop.
        import dataclasses as dc

        import numpy as np

        from repro.cache.stack_distance import StackDistanceTracker
        from repro.verify.differential import deep_diff

        rng = np.random.default_rng(7)
        pages = rng.integers(0, 300, 800).tolist()
        times = np.sort(rng.uniform(0.0, 600.0, 800))

        live = JointPowerManager(machine)
        for t, p in zip(times.tolist(), pages):
            live.record_access(t, p)
        live_decision = live.end_period(600.0)

        tracker = StackDistanceTracker()
        depths = tracker.access_array(pages)
        batched = JointPowerManager(machine)
        batched.record_profiled(times, depths)
        assert len(batched._predictor) == len(pages)
        batched_decision = batched.end_period(600.0)

        assert deep_diff(live_decision, batched_decision) is None
