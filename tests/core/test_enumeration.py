"""Candidate-size enumeration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.machine import MachineConfig, paper_machine
from repro.core.enumeration import candidate_sizes
from repro.units import GB, MB


def machine_with(max_candidates=None, enumeration_unit=None, min_memory=None):
    base = paper_machine()
    manager = base.manager
    changes = {}
    if max_candidates is not None:
        changes["max_candidates"] = max_candidates
    if enumeration_unit is not None:
        changes["enumeration_unit_bytes"] = enumeration_unit
    if min_memory is not None:
        changes["min_memory_bytes"] = min_memory
    manager = dataclasses.replace(manager, **changes)
    return MachineConfig(memory=base.memory, disk=base.disk, manager=manager)


class TestEnumeration:
    def test_candidates_ascend_and_align(self):
        sizes = candidate_sizes(machine_with(max_candidates=32))
        assert sizes == sorted(sizes)
        assert all(size % (16 * MB) == 0 for size in sizes)

    def test_endpoints_included(self):
        machine = machine_with(max_candidates=16)
        sizes = candidate_sizes(machine)
        assert sizes[0] == machine.manager.min_memory_bytes
        assert sizes[-1] == machine.memory.installed_bytes

    def test_cap_respected(self):
        sizes = candidate_sizes(machine_with(max_candidates=10))
        assert len(sizes) <= 10

    def test_full_enumeration_when_small(self):
        # 1-GB units over 128 GB = 128 candidates < 200.
        machine = machine_with(
            max_candidates=200, enumeration_unit=1 * GB, min_memory=1 * GB
        )
        sizes = candidate_sizes(machine)
        assert len(sizes) == 128
        assert sizes[0] == 1 * GB and sizes[-1] == 128 * GB

    def test_paper_unit_is_16mb(self):
        # With the paper's unit the enumeration is dense ("within several
        # thousand") and must be down-sampled to the configured cap.
        machine = machine_with(max_candidates=64)
        sizes = candidate_sizes(machine)
        assert len(sizes) == 64

    def test_candidates_unique(self):
        sizes = candidate_sizes(machine_with(max_candidates=64))
        assert len(set(sizes)) == len(sizes)
