"""Enumeration coarseness: the cost of capping the candidate grid.

The paper enumerates every 16-MB multiple; we spread ``max_candidates``
over the same range.  The worst case a coarser grid can do is overshoot
the fine grid's choice by one grid step of memory -- so its extra energy
is bounded by (step x per-byte static power x measured window).  This
test pins that bound (and the fact that constraints hold either way).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.machine import MachineConfig
from repro.sim.runner import run_method
from repro.units import GB


def with_candidates(machine, count):
    manager = dataclasses.replace(machine.manager, max_candidates=count)
    return MachineConfig(
        memory=machine.memory,
        disk=machine.disk,
        manager=manager,
        scale=machine.scale,
    )


class TestEnumerationSensitivity:
    @pytest.fixture(scope="class")
    def runs(self, fast_machine, small_trace):
        results = {}
        for count in (16, 64):
            machine = with_candidates(fast_machine, count)
            results[count] = run_method(
                "JOINT",
                small_trace,
                machine,
                duration_s=600.0,
                warmup_s=120.0,
            )
        return results

    def test_extra_energy_bounded_by_one_grid_step(self, runs, fast_machine):
        fine = runs[64].total_energy_j
        coarse = runs[16].total_energy_j
        assert coarse >= fine - 1e-6  # a finer grid can only do better
        step_bytes = 128 * GB / 15  # 16 candidates spread over 128 GB
        window_s = runs[16].duration_s
        bound = (
            fast_machine.memory.static_power_per_byte * step_bytes * window_s
        )
        assert coarse - fine <= bound + 1e-6

    def test_chosen_sizes_close(self, runs):
        fine = runs[64].decisions[-1].memory_bytes
        coarse = runs[16].decisions[-1].memory_bytes
        # Within one coarse-grid step (128 GB / 15 intervals).
        step = 128 * GB / 15
        assert abs(fine - coarse) <= step + 1e-9

    def test_both_respect_constraints(self, runs, fast_machine):
        for result in runs.values():
            assert result.long_latency_per_s < 3.0
