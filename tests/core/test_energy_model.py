"""Per-candidate power estimation (eq. 4 + memory statics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.predictor import CandidatePrediction
from repro.config.machine import paper_machine
from repro.core.energy_model import MIN_INTERVALS_FOR_FIT, evaluate_candidate
from repro.disk.service import ServiceModel
from repro.stats.intervals import IdleIntervals
from repro.units import GB


@pytest.fixture(scope="module")
def machine():
    return paper_machine().scaled(1024)


@pytest.fixture(scope="module")
def service(machine):
    return ServiceModel(machine.disk, machine.page_bytes)


def prediction(machine, capacity_bytes, disk_accesses, idle_lengths, total=10_000):
    lengths = np.asarray(idle_lengths, dtype=float)
    idle = IdleIntervals(lengths=lengths, window_s=0.1, num_accesses=disk_accesses)
    return CandidatePrediction(
        capacity_pages=capacity_bytes // machine.page_bytes,
        num_disk_accesses=disk_accesses,
        idle=idle,
        num_cache_accesses=total,
    )


class TestMemoryTerm:
    def test_memory_power_proportional_to_size(self, machine, service):
        small = evaluate_candidate(
            machine, service, prediction(machine, 8 * GB, 0, []), 600.0
        )
        large = evaluate_candidate(
            machine, service, prediction(machine, 16 * GB, 0, []), 600.0
        )
        assert large.memory_power_w == pytest.approx(2 * small.memory_power_w)
        # 8 GB at 0.656 mW/MB = 5.4 W.
        assert small.memory_power_w == pytest.approx(5.37, rel=0.01)


class TestSilentDisk:
    def test_no_accesses_spins_down(self, machine, service):
        ev = evaluate_candidate(
            machine, service, prediction(machine, 8 * GB, 0, []), 600.0
        )
        assert ev.timeout_s == 0.0
        assert ev.disk_dynamic_power_w == 0.0
        assert ev.meets_utilization
        # Static power reduces to one round trip per period.
        expected = 6.6 * machine.disk.break_even_time_s / 600.0
        assert ev.disk_static_power_w == pytest.approx(expected, rel=0.01)


class TestFewIntervalsFallback:
    def test_falls_back_to_two_competitive(self, machine, service):
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 10, [30.0, 40.0]),
            600.0,
        )
        assert ev.fit is None
        assert ev.timeout_s == pytest.approx(machine.disk.break_even_time_s)
        assert ev.disk_static_power_w == pytest.approx(6.6)


class TestFittedPath:
    def test_long_idleness_spins_down(self, machine, service):
        # 20 idle intervals of 60-300 s: plenty to save.
        rng = np.random.default_rng(5)
        lengths = rng.uniform(60.0, 300.0, size=20)
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 20, lengths),
            3600.0,
        )
        assert ev.fit is not None
        assert ev.timeout_s is not None
        assert ev.disk_static_power_w < 6.6

    def test_short_idleness_stays_up(self, machine, service):
        # Intervals way below the break-even time: spinning down loses.
        lengths = np.full(50, 0.2)
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 50, lengths),
            600.0,
        )
        assert ev.timeout_s is None
        assert ev.disk_static_power_w == pytest.approx(6.6)

    def test_minimum_interval_count(self, machine, service):
        lengths = [50.0] * (MIN_INTERVALS_FOR_FIT - 1)
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 5, lengths),
            600.0,
        )
        assert ev.fit is None


class TestUtilisationConstraint:
    def test_heavy_traffic_fails_constraint(self, machine, service):
        # 600 one-page random accesses in 600 s at ~0.385 s each: 38%.
        lengths = np.full(20, 1.0)
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 600, lengths),
            600.0,
        )
        assert not ev.meets_utilization
        assert ev.predicted_utilization > machine.manager.max_utilization

    def test_light_traffic_passes(self, machine, service):
        lengths = np.full(20, 30.0)
        ev = evaluate_candidate(
            machine,
            service,
            prediction(machine, 8 * GB, 50, lengths),
            600.0,
        )
        assert ev.meets_utilization

    def test_dynamic_power_tracks_utilisation(self, machine, service):
        lengths = np.full(20, 10.0)
        light = evaluate_candidate(
            machine, service, prediction(machine, 8 * GB, 50, lengths), 600.0
        )
        heavy = evaluate_candidate(
            machine, service, prediction(machine, 8 * GB, 100, lengths), 600.0
        )
        assert heavy.disk_dynamic_power_w == pytest.approx(
            2 * light.disk_dynamic_power_w, rel=0.01
        )

    def test_total_power_sums_terms(self, machine, service):
        ev = evaluate_candidate(
            machine, service, prediction(machine, 8 * GB, 0, []), 600.0
        )
        assert ev.total_power_w == pytest.approx(
            ev.memory_power_w + ev.disk_static_power_w + ev.disk_dynamic_power_w
        )
