"""Soak: the joint manager over a long, phase-changing horizon.

Twenty periods spanning three workload phases (busy read serving, a
write-heavy batch, a quiet night).  The manager must adapt through every
phase change, keep all invariants (audited), never leak memory-size
state across phases, and end the quiet phase with a small cache.
"""

from __future__ import annotations

import pytest

from repro.sim.audit import assert_clean
from repro.sim.runner import run_method
from repro.traces.compose import concatenate
from repro.traces.specweb import generate_trace
from repro.units import GB, MB


@pytest.fixture(scope="module")
def phased_trace(fast_machine):
    period = fast_machine.manager.period_s

    def phase(rate_mb, write_fraction, seed, periods):
        return generate_trace(
            dataset_bytes=8 * GB,
            data_rate=rate_mb * MB,
            duration_s=periods * period,
            page_size=fast_machine.page_bytes,
            file_scale=fast_machine.scale,
            write_fraction=write_fraction,
            seed=seed,
        )

    busy = phase(80.0, 0.0, 1, periods=8)
    batch = phase(30.0, 0.3, 2, periods=6)
    night = phase(2.0, 0.0, 3, periods=6)
    return concatenate([busy, batch, night])


class TestSoak:
    @pytest.fixture(scope="class")
    def result(self, fast_machine, phased_trace):
        period = fast_machine.manager.period_s
        return run_method(
            "JOINT",
            phased_trace,
            fast_machine,
            duration_s=20 * period,
            warmup_s=2 * period,
        )

    def test_run_audits_clean(self, result, fast_machine):
        assert_clean(result, fast_machine)

    def test_manager_decided_every_period(self, result):
        assert len(result.decisions) == 20
        indices = [d.period_index for d in result.decisions]
        assert indices == list(range(20))

    def test_adapts_down_in_the_night_phase(self, result):
        busy_sizes = [d.memory_bytes for d in result.decisions[3:8]]
        night_sizes = [d.memory_bytes for d in result.decisions[-3:]]
        assert min(night_sizes) < min(busy_sizes)

    def test_writes_flushed_during_batch_phase(self, result):
        assert result.disk_write_pages > 0

    def test_periods_tile_the_window(self, result):
        spans = sum(p.duration_s for p in result.periods)
        assert spans == pytest.approx(result.duration_s)

    def test_constraints_hold_overall(self, result, fast_machine):
        assert result.long_latency_per_s < 3.0
