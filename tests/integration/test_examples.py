"""Each example script runs end to end.

Examples are the public face of the library; a broken one is a broken
deliverable.  Each runs in a subprocess exactly as a user would run it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_every_example_is_covered():
    """Keep this list in sync with the examples directory."""
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "webserver_comparison.py",
        "capacity_planning.py",
        "disk_policy_study.py",
        "trace_workshop.py",
        "diurnal_server.py",
        "disk_array_layout.py",
        "decision_anatomy.py",
        "campaign_grid.py",
        "serve_tenants.py",
    }


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100  # produced a real report


def test_quickstart_reports_savings():
    result = run_example("quickstart.py")
    assert "Joint method saves" in result.stdout
    assert "Per-period decisions" in result.stdout
