"""End-to-end assertions of the paper's qualitative results.

These run the real pipeline (generator -> cache -> disk -> managers) at a
reduced horizon and check the *shape* claims of Section V: who wins,
which constraints hold, which methods degrade.
"""

from __future__ import annotations

import pytest

from repro.sim.compare import compare_methods
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB

DURATION = 960.0  # 8 periods of 120 s on the fast machine
WARMUP = 240.0


@pytest.fixture(scope="module")
def small_dataset_comparison(fast_machine):
    """4-GB data set: small enough that memory sizing dominates."""
    trace = generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=DURATION,
        page_size=fast_machine.page_bytes,
        seed=77,
        file_scale=fast_machine.scale,
    )
    return compare_methods(
        trace,
        fast_machine,
        methods=[
            "JOINT",
            "2TFM-8GB",
            "2TFM-32GB",
            "2TFM-128GB",
            "2TPD-128GB",
            "2TDS-128GB",
            "ALWAYS-ON",
        ],
        duration_s=DURATION,
        warmup_s=WARMUP,
    )


class TestSmallDataSet:
    def test_joint_beats_oversized_fm(self, small_dataset_comparison):
        # Paper Fig. 7(a): at 4 GB the joint method saves ~19% over
        # 2TFM-32GB by shrinking memory.
        norm = small_dataset_comparison.normalized_by_label()
        assert norm["JOINT"].total_energy < norm["2TFM-32GB"].total_energy
        assert norm["JOINT"].total_energy < norm["2TFM-128GB"].total_energy

    def test_joint_shrinks_memory_to_data_set(self, small_dataset_comparison):
        joint = small_dataset_comparison["JOINT"]
        final = joint.decisions[-1].memory_bytes
        assert final <= 8 * GB  # close to the 4-GB data set, far below 128

    def test_everyone_beats_always_on(self, small_dataset_comparison):
        norm = small_dataset_comparison.normalized_by_label()
        for label, n in norm.items():
            if label != "ALWAYS-ON":
                assert n.total_energy < 1.0, label

    def test_pd_memory_share(self, small_dataset_comparison):
        # Paper Fig. 7(c): PD memory energy stays above 30% of always-on.
        norm = small_dataset_comparison.normalized_by_label()
        assert norm["2TPD-128GB"].memory_energy > 0.30

    def test_joint_respects_utilization_constraint(
        self, small_dataset_comparison, fast_machine
    ):
        joint = small_dataset_comparison["JOINT"]
        assert joint.utilization <= fast_machine.manager.max_utilization * 1.5

    def test_joint_latency_small(self, small_dataset_comparison):
        # Paper Fig. 7(d): joint stays in the millisecond range.
        joint = small_dataset_comparison["JOINT"]
        assert joint.mean_latency_s < 0.15


class TestUndersizedMemory:
    """16-GB data set, popularity 0.6, against an 8-GB FM cache.

    Paper Fig. 8(d): "As the size of the most popular data exceeds the
    memory size (0.6 * 16 = 9.6 GB > 8 GB), disk accesses occur
    frequently" -- the 8-GB cache thrashes while 32 GB sails.
    """

    @pytest.fixture(scope="class")
    def comparison(self, fast_machine):
        trace = generate_trace(
            dataset_bytes=16 * GB,
            data_rate=100 * MB,
            duration_s=DURATION,
            popularity=0.6,
            page_size=fast_machine.page_bytes,
            seed=78,
            file_scale=fast_machine.scale,
        )
        return compare_methods(
            trace,
            fast_machine,
            methods=["JOINT", "2TFM-8GB", "2TFM-32GB", "ALWAYS-ON"],
            duration_s=DURATION,
            warmup_s=WARMUP,
        )

    def test_undersized_fm_has_higher_utilization(self, comparison):
        assert (
            comparison["2TFM-8GB"].utilization
            > 2 * comparison["2TFM-32GB"].utilization
        )

    def test_undersized_fm_has_more_long_latency(self, comparison):
        assert (
            comparison["2TFM-8GB"].long_latency
            > comparison["2TFM-32GB"].long_latency
        )

    def test_undersized_fm_latency_elevated(self, comparison):
        assert (
            comparison["2TFM-8GB"].mean_latency_s
            > 2 * comparison["2TFM-32GB"].mean_latency_s
        )

    def test_joint_keeps_long_latency_low(self, comparison):
        # Paper: "for the joint method, the number of long-latency
        # requests per second is always below three".
        assert comparison["JOINT"].long_latency_per_s < 3.0


class TestDiskPolicyComparison:
    def test_oracle_bounds_online_policies(self, fast_machine):
        trace = generate_trace(
            dataset_bytes=4 * GB,
            data_rate=20 * MB,
            duration_s=DURATION,
            page_size=fast_machine.page_bytes,
            seed=79,
            file_scale=fast_machine.scale,
        )
        results = {
            name: run_method(
                name, trace, fast_machine, duration_s=DURATION, warmup_s=WARMUP
            )
            for name in ("ORFM-16GB", "2TFM-16GB", "ADFM-16GB", "ONFM-16GB")
        }
        oracle = results["ORFM-16GB"].disk_energy_j
        # The oracle lower-bounds every online policy's disk energy...
        assert oracle <= results["2TFM-16GB"].disk_energy_j + 1e-6
        assert oracle <= results["ADFM-16GB"].disk_energy_j + 1e-6
        # ... and 2T is within its competitive factor of 2 (plus dynamic
        # energy common to all).
        assert results["2TFM-16GB"].disk_energy_j <= 2.5 * max(oracle, 1.0)
        # Both timeout policies beat never spinning down on idle workloads.
        assert results["2TFM-16GB"].disk_energy_j <= (
            results["ONFM-16GB"].disk_energy_j + 1e-6
        )
