"""The paper's central claim, verified end to end.

Section IV-B: the extended LRU list predicts the disk IO at any memory
size "without running the same programs multiple times for different
sizes of the disk cache".  Here we *do* run the workload multiple times
-- one full engine run per fixed memory size -- and check that a single
instrumented pass predicts every run's miss count exactly.
"""

from __future__ import annotations

import pytest

from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.sim.prefill import warm_start_pages
from repro.sim.runner import run_method
from repro.units import GB

SIZES_GB = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def predicted_and_actual(fast_machine, small_trace):
    # --- one instrumented pass (what the joint manager does) ---------------
    prefill = warm_start_pages(small_trace)
    tracker = StackDistanceTracker()
    for page in prefill:
        tracker.access(page)
    predictor = ResizePredictor()
    for t, page in zip(small_trace.times, small_trace.pages):
        predictor.record(float(t), tracker.access(int(page)))
    page_bytes = fast_machine.page_bytes
    predictions = predictor.predict(
        [size * GB // page_bytes for size in SIZES_GB],
        window_s=fast_machine.manager.aggregation_window_s,
        period_start=0.0,
        period_end=600.0,
    )
    predicted = {
        size: prediction.num_disk_accesses
        for size, prediction in zip(SIZES_GB, predictions)
    }

    # --- one real engine run per size ---------------------------------------
    actual = {}
    for size in SIZES_GB:
        result = run_method(
            f"ONFM-{size}GB",
            small_trace,
            fast_machine,
            duration_s=600.0,
        )
        actual[size] = result.disk_page_accesses
    return predicted, actual


class TestPredictionMatchesReruns:
    def test_exact_at_every_size(self, predicted_and_actual):
        predicted, actual = predicted_and_actual
        for size in SIZES_GB:
            assert predicted[size] == actual[size], (
                f"{size} GB: predicted {predicted[size]}, "
                f"actual {actual[size]}"
            )

    def test_monotone_in_memory(self, predicted_and_actual):
        predicted, _ = predicted_and_actual
        counts = [predicted[size] for size in SIZES_GB]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_prediction_was_one_pass(self, predicted_and_actual):
        # Sanity: the comparison covers materially different configs.
        predicted, actual = predicted_and_actual
        assert predicted[SIZES_GB[0]] > predicted[SIZES_GB[-1]]
        assert actual[SIZES_GB[0]] > actual[SIZES_GB[-1]]
