"""Failure injection: an ageing drive that wakes slowly.

Real drives degrade -- spin-up can take twice the datasheet figure.  The
adaptive policy (AD) is supposed to notice exactly this (it adapts on
the spin-up-delay/idle ratio); the fixed 2T policy cannot.  Inject the
degradation and check both reactions.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config.machine import MachineConfig
from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.prefill import warm_start_pages
from repro.sim.runner import run_method
from repro.units import GB


def degraded(machine: MachineConfig, factor: float = 2.5) -> MachineConfig:
    """Spin-up takes ``factor`` times longer (round trip stretches too)."""
    disk = dataclasses.replace(
        machine.disk,
        spin_up_time_s=machine.disk.spin_up_time_s * factor,
        transition_time_s=(
            machine.disk.spin_down_time_s
            + machine.disk.spin_up_time_s * factor
        ),
    )
    return MachineConfig(
        memory=machine.memory,
        disk=disk,
        manager=machine.manager,
        scale=machine.scale,
    )


def run_adaptive(machine, trace):
    spec_policy = AdaptiveTimeoutPolicy()
    from repro.policies.registry import parse_method

    memory = parse_method("ADFM-16GB").build_memory_system(machine)
    memory.prefill(warm_start_pages(trace))
    engine = SimulationEngine(machine, memory, disk_policy=spec_policy)
    result = engine.run(trace, duration_s=600.0)
    return spec_policy, result


class TestDegradedDrive:
    def test_adaptive_policy_backs_off(self, fast_machine, small_trace):
        healthy_policy, _ = run_adaptive(fast_machine, small_trace)
        degraded_policy, _ = run_adaptive(
            degraded(fast_machine), small_trace
        )
        # The slow-waking drive pushes the adaptive timeout up at least
        # as far as on the healthy drive.
        assert degraded_policy.timeout_s >= healthy_policy.timeout_s

    def test_fixed_policy_pays_in_wake_delays(self, fast_machine, small_trace):
        healthy = run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=600.0
        )
        slow = run_method(
            "2TFM-16GB",
            small_trace,
            degraded(fast_machine),
            duration_s=600.0,
        )
        # Longer wakes ripple into the timing (completions shift, so the
        # exact spin-down schedule may differ), but the user-visible cost
        # can only grow: latency strictly worse, at least as many long
        # wake delays per spin-down.
        assert slow.mean_latency_s > healthy.mean_latency_s
        assert slow.wake_long_latency / max(slow.spin_down_cycles, 1) >= (
            healthy.wake_long_latency / max(healthy.spin_down_cycles, 1)
        ) * 0.9

    def test_degraded_drive_audits_clean(self, fast_machine, small_trace):
        result = run_method(
            "ADFM-16GB",
            small_trace,
            degraded(fast_machine),
            duration_s=600.0,
            audit=True,
        )
        assert result.total_accesses > 0

    def test_joint_constraint_reacts_to_slow_wakes(
        self, fast_machine, small_trace
    ):
        """eq. (6)'s floor scales with (t_tr - 0.5): a slower wake raises
        the minimum timeout the constraint allows."""
        healthy = run_method(
            "JOINT", small_trace, fast_machine, duration_s=600.0
        )
        slow = run_method(
            "JOINT", small_trace, degraded(fast_machine), duration_s=600.0
        )
        def final_timeout(result):
            value = result.decisions[-1].timeout_s
            return float("inf") if value is None else value

        assert final_timeout(slow) >= final_timeout(healthy) - 1.0
