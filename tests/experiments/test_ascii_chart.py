"""Terminal charts."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.ascii_chart import bar_chart, series_panel, sparkline


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        text = bar_chart({"long-name": 1.0, "x": 1.0})
        lines = text.splitlines()
        assert lines[0].index("█") == lines[1].index("█")

    def test_reference_marker(self):
        text = bar_chart({"a": 0.5}, width=10, reference=1.0)
        assert "|" in text

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_zero_values_ok(self):
        text = bar_chart({"a": 0.0, "b": 2.0})
        assert "0" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart({})
        with pytest.raises(ReproError):
            bar_chart({"a": 1.0}, width=2)
        with pytest.raises(ReproError):
            bar_chart({"a": -1.0})


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        line = sparkline([0, 10])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄" * 3

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])


class TestSeriesPanel:
    def test_panel_layout(self):
        text = series_panel({"8GB": [1, 2, 3], "16GB": [3, 2, 1]}, title="Fig9")
        lines = text.splitlines()
        assert lines[0] == "Fig9"
        assert len(lines) == 3
        assert "[1 .. 3]" in lines[1]

    def test_empty_series_rejected(self):
        with pytest.raises(ReproError):
            series_panel({"x": []})
        with pytest.raises(ReproError):
            series_panel({})
