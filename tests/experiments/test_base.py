"""Experiment configuration profiles."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ReproError
from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    config_from_env,
    full_config,
    quick_config,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.units import MB


class TestConfigs:
    def test_full_profile_matches_paper(self):
        config = full_config()
        assert config.period_s == 600.0
        assert config.dataset_gb == 16.0
        assert config.data_rate_mb == 100.0
        assert config.popularity == 0.10

    def test_durations(self):
        config = ExperimentConfig(warmup_periods=2, measure_periods=5)
        assert config.warmup_s == 1200.0
        assert config.duration_s == 4200.0

    def test_machine_period_override(self):
        machine = full_config().machine(period_s=300.0)
        assert machine.manager.period_s == 300.0

    def test_machine_bank_override(self):
        machine = full_config().machine(bank_mb=1024)
        assert machine.memory.bank_bytes == 1024 * MB

    def test_trace_generation_respects_machine(self):
        config = quick_config()
        machine = config.machine()
        trace = config.make_trace(machine, duration_s=300.0)
        assert trace.page_size == machine.page_bytes
        assert trace.duration_s <= 300.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(measure_periods=0)

    def test_explicit_zero_overrides_are_honoured(self):
        # Regression: `value or default` treated an intentional 0.0 as
        # unset and substituted the profile default.
        config = quick_config()
        machine = config.machine()
        spec = config.workload(machine, popularity=0.0, duration_s=300.0)
        assert spec.popularity == 0.0
        assert spec.duration_s == 300.0
        assert config.workload(machine).popularity == config.popularity

    def test_make_trace_zero_popularity_is_loud_not_silent(self):
        # Before the fix, make_trace(popularity=0.0) silently simulated
        # the profile default (0.1).  Now the explicit value propagates
        # and the trace generator rejects it out loud.
        from repro.errors import TraceError

        config = quick_config()
        machine = config.machine()
        with pytest.raises(TraceError, match="popularity"):
            config.make_trace(
                machine, dataset_gb=1.0, popularity=0.0, duration_s=120.0
            )

    def test_workload_spec_matches_make_trace(self):
        config = quick_config()
        machine = config.machine()
        spec = config.workload(machine, dataset_gb=1.0, duration_s=120.0)
        trace = config.make_trace(machine, dataset_gb=1.0, duration_s=120.0)
        built = spec.build()
        assert built.times.tolist() == trace.times.tolist()
        assert built.pages.tolist() == trace.pages.tolist()

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        assert config_from_env().scale == quick_config().scale
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert config_from_env().scale == full_config().scale
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ConfigError):
            config_from_env()


class TestRegistry:
    def test_all_paper_artefacts_present(self):
        names = list_experiments()
        for artefact in (
            "fig5",
            "fig7",
            "fig8rate",
            "fig8pop",
            "fig9",
            "table3",
            "table4",
            "table5",
        ):
            assert artefact in names

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG5") is get_experiment("fig5")

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")


class TestResultRendering:
    def test_render_includes_notes(self):
        result = ExperimentResult(
            name="demo",
            title="Demo",
            rows=[{"a": 1}],
            notes="a note",
        )
        text = result.render()
        assert "Demo" in text and "a note" in text
