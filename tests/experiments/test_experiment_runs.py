"""Each experiment runner end-to-end on a minimal profile.

These are structural smoke tests (row schema, label coverage, value
sanity); the paper-shape assertions live in the benchmarks, which run
the full profile.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation,
    hw_sensitivity,
    idle_fit,
    fig5_pareto,
    fig7_dataset,
    fig8_popularity,
    fig8_rate,
    fig9_timeseries,
    table3_accesses,
    table4_period,
    table5_bank,
    writes,
)
from repro.experiments.base import ExperimentConfig


@pytest.fixture(scope="module")
def mini():
    return ExperimentConfig(
        scale=1024,
        period_s=120.0,
        warmup_periods=1,
        measure_periods=2,
        dataset_gb=4.0,
        data_rate_mb=50.0,
        fm_sizes_gb=[8, 128],
    )


class TestFig5:
    def test_rows_and_schema(self, mini):
        result = fig5_pareto.run(mini)
        assert result.name == "fig5"
        assert len(result.rows) == 2
        for row in result.rows:
            assert set(row) >= {"alpha", "alpha_mom", "t_opt_eq5_s"}
        assert "Pareto" in result.render()


class TestFig7:
    def test_single_point_sweep(self, mini):
        result = fig7_dataset.run(mini, datasets_gb=[4.0])
        labels = {row["method"] for row in result.rows}
        assert "JOINT" in labels and "ALWAYS-ON" in labels
        # joint + 2 disks x (2 FM + PD + DS) + always-on = 10
        assert len(result.rows) == 10
        base = next(r for r in result.rows if r["method"] == "ALWAYS-ON")
        assert base["total_energy"] == pytest.approx(1.0)


class TestTable3:
    def test_counts_structure(self, mini):
        result = table3_accesses.run(mini, datasets_gb=[4.0])
        methods = [row["method"] for row in result.rows]
        assert methods[-1] == "MA (memory accesses)"
        ma = result.rows[-1]["4GB"]
        for row in result.rows[:-1]:
            assert 0 <= row["4GB"] <= ma


class TestFig8:
    def test_rate_sweep(self, mini):
        result = fig8_rate.run(mini, rates_mb=[20.0])
        assert {row["rate_mb_s"] for row in result.rows} == {20.0}
        assert all(0 <= row["total_energy"] <= 1.5 for row in result.rows)

    def test_popularity_sweep(self, mini):
        result = fig8_popularity.run(mini, popularities=[0.2])
        assert {row["popularity"] for row in result.rows} == {0.2}


class TestSensitivity:
    def test_period_sweep(self, mini):
        result = table4_period.run(mini, periods_min=[2.0, 4.0])
        assert [row["period_min"] for row in result.rows] == [2.0, 4.0]
        assert all(row["total_energy"] > 0 for row in result.rows)

    def test_bank_sweep(self, mini):
        result = table5_bank.run(mini, banks_mb=[16, 256])
        assert [row["bank_mb"] for row in result.rows] == [16, 256]


class TestFig9:
    def test_timeseries_rows(self, mini):
        result = fig9_timeseries.run(mini, memories_gb=[8], num_periods=3)
        assert {row["memory_gb"] for row in result.rows} == {8}
        # One of the three periods is warm-up; two are measured.
        assert len(result.rows) == 3 - mini.warmup_periods
        assert "variation" in result.notes


class TestWrites:
    def test_write_sweep_rows(self, mini):
        result = writes.run(mini, write_fractions=[0.0, 0.2])
        fractions = {row["write_fraction"] for row in result.rows}
        assert fractions == {0.0, 0.2}
        zero = [r for r in result.rows if r["write_fraction"] == 0.0]
        assert all(r["writeback_pages"] == 0 for r in zero)


class TestHwSensitivity:
    def test_variant_rows(self, mini):
        result = hw_sensitivity.run(
            mini, variants=[("paper", 1.0, 1.0), ("laptop-disk", 1.0, None)]
        )
        variants = {row["variant"] for row in result.rows}
        assert variants == {"paper", "laptop-disk"}
        laptop = next(r for r in result.rows if r["variant"] == "laptop-disk")
        assert laptop["break_even_time_s"] == 6.0


class TestIdleFit:
    def test_histogram_rows(self, mini):
        result = idle_fit.run(mini, memories_gb=[2.0])
        assert {row["memory_gb"] for row in result.rows} == {2.0}
        assert sum(row["intervals"] for row in result.rows) > 0
        shares = sum(row["share_of_idle_time"] for row in result.rows)
        assert shares == pytest.approx(1.0, abs=0.02)


class TestAblation:
    def test_variant_rows(self, mini):
        result = ablation.run(mini, datasets_gb=[4.0])
        variants = {row["variant"] for row in result.rows}
        assert variants == {
            "JOINT",
            "JOINT-NC",
            "JOINT-MEM",
            "JOINT-TO",
            "ALWAYS-ON",
        }
