"""ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.formatting import format_value, render_series, render_table


class TestFormatValue:
    def test_none_dashes(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_trimming(self):
        assert format_value(1.5) == "1.5"
        assert format_value(0.0) == "0"
        assert format_value(2.000) == "2"

    def test_large_and_tiny_use_general_format(self):
        assert format_value(123456.789) == "1.23e+05"
        assert "e" in format_value(1.2e-7)

    def test_strings_pass_through(self):
        assert format_value("JOINT") == "JOINT"


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [
            {"method": "JOINT", "energy": 0.5},
            {"method": "ALWAYS-ON", "energy": 1.0},
        ]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("method")
        assert "JOINT" in lines[3]
        # All rows align to the same width.
        assert len({len(line) for line in lines[2:]}) <= 2

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_dash(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = render_table(rows, columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_table([])


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            "rate", [5, 50], {"JOINT": [0.3, 0.4], "ALWAYS-ON": [1.0, 1.0]}
        )
        lines = text.splitlines()
        assert lines[0].split()[0] == "rate"
        assert len(lines) == 4

    def test_short_series_padded(self):
        text = render_series("x", [1, 2], {"y": [9]})
        assert "-" in text.splitlines()[-1]
