"""The migrating layout: popularity ranking, move planning, stability."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.fleet.layout import MigratingLayout


class TestMigratingLayout:
    def test_starts_as_partitioned(self):
        layout = MigratingLayout(num_disks=3, pages_per_disk=10)
        assert layout.disk_of(0) == 0
        assert layout.disk_of(10) == 1
        assert layout.disk_of(29) == 2
        assert layout.disk_of(1000) == 2  # wraps to the last disk

    def test_validation(self):
        with pytest.raises(ConfigError):
            MigratingLayout(num_disks=0, pages_per_disk=10)
        with pytest.raises(ConfigError):
            MigratingLayout(num_disks=2, pages_per_disk=0)
        with pytest.raises(ConfigError):
            MigratingLayout(num_disks=2, pages_per_disk=10, max_moves_per_period=-1)

    def test_negative_page_is_a_runtime_error(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=10)
        with pytest.raises(SimulationError):
            layout.disk_of(-1)
        with pytest.raises(SimulationError):
            layout.record_access(-3)

    def test_hot_pages_pack_onto_disk_zero(self):
        layout = MigratingLayout(num_disks=4, pages_per_disk=2)
        # Pages 20 and 21 start on the last disk; make them the hottest.
        for _ in range(5):
            layout.record_access(20)
            layout.record_access(21)
        layout.record_access(0)  # lukewarm, already on disk 0
        moves = layout.plan_rebalance()
        assert (20, 3, 0) in moves
        assert (21, 3, 0) in moves
        # Rank 2 (page 0) targets disk 1: it is displaced by the hot pair.
        assert (0, 0, 1) in moves

    def test_plan_does_not_mutate(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=1)
        layout.record_access(5)
        before = layout.disk_of(5)
        layout.plan_rebalance()
        assert layout.disk_of(5) == before
        assert layout.observed_pages == 1

    def test_apply_moves_is_effective_and_resets_counts(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=1)
        layout.record_access(7)
        moves = layout.plan_rebalance()
        assert moves == [(7, 1, 0)]
        layout.apply_moves(moves)
        assert layout.disk_of(7) == 0
        assert layout.observed_pages == 0
        # A quiet period plans nothing and keeps the placement.
        assert layout.plan_rebalance() == []
        assert layout.disk_of(7) == 0

    def test_unobserved_pages_keep_their_placement(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=1)
        layout.record_access(7)
        layout.apply_moves(layout.plan_rebalance())
        assert layout.disk_of(7) == 0
        # Next period only page 3 is hot; page 7 stays where it landed
        # until a later rebalance displaces it.
        layout.record_access(3)
        layout.apply_moves(layout.plan_rebalance())
        assert layout.disk_of(3) == 0
        assert layout.disk_of(7) == 0

    def test_ties_break_toward_lower_page(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=1)
        layout.record_access(9)
        layout.record_access(4)
        moves = layout.plan_rebalance()
        # Both pages have one tick; page 4 wins rank 0 (disk 0).
        assert moves[0][0] == 4

    def test_move_cap(self):
        layout = MigratingLayout(
            num_disks=4, pages_per_disk=1, max_moves_per_period=1
        )
        for page in (10, 11, 12):
            layout.record_access(page)
        moves = layout.plan_rebalance()
        assert len(moves) == 1

    def test_apply_rejects_out_of_range_target(self):
        layout = MigratingLayout(num_disks=2, pages_per_disk=1)
        with pytest.raises(SimulationError):
            layout.apply_moves([(0, 0, 5)])
