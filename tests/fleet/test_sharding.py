"""Sharded fleet decomposition: hashing, trace merge, report merge."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign.tasks import WorkloadSpec
from repro.errors import CampaignError, ConfigError, SimulationError
from repro.fleet.sharding import (
    TENANT_FILE_SPAN,
    FleetReport,
    FleetSpec,
    fleet_plan,
    merge_tenant_traces,
    run_fleet_monolithic,
    shard_of,
    tenant_page_span,
)
from repro.policies.registry import parse_method


def _tenants(machine, count=3, duration=240.0):
    return tuple(
        WorkloadSpec.for_machine(
            machine,
            dataset_gb=1.0,
            rate_mb=2.0,
            popularity=0.8,
            duration_s=duration,
            seed=900 + i,
        )
        for i in range(count)
    )


def _spec(machine, **overrides):
    defaults = dict(
        machine=machine,
        method=parse_method("2TNAP"),
        tenants=_tenants(machine),
        num_shards=2,
        duration_s=240.0,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestShardAssignment:
    def test_stable_and_order_independent(self, fast_machine):
        tenants = _tenants(fast_machine, count=4)
        first = [shard_of(t, 3) for t in tenants]
        second = [shard_of(t, 3) for t in reversed(tenants)]
        assert first == list(reversed(second))
        assert all(0 <= s < 3 for s in first)

    def test_num_shards_validated(self, fast_machine):
        with pytest.raises(ConfigError):
            shard_of(_tenants(fast_machine)[0], 0)


class TestPageSpan:
    def test_covers_every_generated_page(self, fast_machine):
        tenants = _tenants(fast_machine)
        span = tenant_page_span(tenants)
        for tenant in tenants:
            trace = tenant.build()
            assert int(trace.pages.max()) < span

    def test_empty_tenants_rejected(self):
        with pytest.raises(ConfigError):
            tenant_page_span(())


class TestMergeTenantTraces:
    def test_offsets_and_time_order(self, fast_machine):
        tenants = _tenants(fast_machine, count=2)
        span = tenant_page_span(tenants)
        merged = merge_tenant_traces(tenants, (0, 1), span, fast_machine.page_bytes)
        assert np.all(np.diff(merged.times) >= 0)
        own = merged.pages // span
        assert set(own.tolist()) == {0, 1}
        assert merged.meta["source"] == "fleet-shard"
        # File ids stay tenant-distinct too.
        assert merged.files is not None
        assert set((merged.files // TENANT_FILE_SPAN).tolist()) == {0, 1}

    def test_global_indices_respected(self, fast_machine):
        tenants = _tenants(fast_machine, count=1)
        span = tenant_page_span(tenants)
        merged = merge_tenant_traces(tenants, (5,), span, fast_machine.page_bytes)
        assert int(merged.pages.min()) >= 5 * span

    def test_span_overflow_is_an_error(self, fast_machine):
        tenants = _tenants(fast_machine, count=1)
        with pytest.raises(SimulationError):
            merge_tenant_traces(tenants, (0,), 1, fast_machine.page_bytes)

    def test_misaligned_indices_rejected(self, fast_machine):
        tenants = _tenants(fast_machine, count=2)
        with pytest.raises(SimulationError):
            merge_tenant_traces(tenants, (0,), 10**6, fast_machine.page_bytes)


class TestFleetSpec:
    def test_validation(self, fast_machine):
        with pytest.raises(ConfigError):
            _spec(fast_machine, num_shards=0)
        with pytest.raises(ConfigError):
            _spec(fast_machine, tenants=())
        with pytest.raises(ConfigError):
            _spec(fast_machine, duration_s=0.0)
        with pytest.raises(ConfigError):
            _spec(fast_machine, layout="raid5")
        with pytest.raises(ConfigError):
            _spec(fast_machine, disks_per_shard=2)  # "sim" is single-disk
        writer = WorkloadSpec.for_machine(
            fast_machine, 1.0, 2.0, 0.8, 240.0, seed=1, write_fraction=0.5
        )
        with pytest.raises(ConfigError):
            _spec(fast_machine, tenants=(writer,))

    def test_tasks_cover_every_tenant_once(self, fast_machine):
        spec = _spec(fast_machine, num_shards=3)
        tasks = spec.tasks()
        seen = [i for task in tasks for i in task.tenant_indices]
        assert sorted(seen) == list(range(len(spec.tenants)))
        for task in tasks:
            assert task.key  # content-hashed and cacheable

    def test_task_keys_are_reproducible(self, fast_machine):
        # Two independently built specs hash to the same task keys; a
        # shard-shape change (layout) changes every key.
        keys = {t.key for t in _spec(fast_machine).tasks()}
        assert keys == {t.key for t in _spec(fast_machine).tasks()}
        multi = _spec(fast_machine, layout="partitioned", disks_per_shard=2)
        assert keys.isdisjoint(t.key for t in multi.tasks())


class TestFanout:
    @pytest.mark.parametrize("layout,disks", [("sim", 1), ("migrating", 2)])
    def test_sharded_matches_monolithic(self, fast_machine, layout, disks):
        spec = _spec(
            fast_machine, layout=layout, disks_per_shard=disks, num_shards=3
        )
        monolithic = run_fleet_monolithic(spec)
        plan = fleet_plan(spec)
        payloads = [
            json.loads(json.dumps(task.execute())) for task in plan.tasks
        ]
        fanout = plan.assemble(payloads)
        expected = monolithic.to_payload()
        actual = fanout.to_payload()
        expected.pop("replay_modes")
        actual.pop("replay_modes")
        assert actual == expected

    def test_assemble_rejects_shape_mismatch(self, fast_machine):
        plan = fleet_plan(_spec(fast_machine))
        with pytest.raises(CampaignError):
            plan.assemble([])

    def test_assemble_rejects_missing_payload(self, fast_machine):
        plan = fleet_plan(_spec(fast_machine))
        with pytest.raises(CampaignError):
            plan.assemble([None] * len(plan.tasks))


class TestCampaignTelemetry:
    def test_fleet_counters_reach_the_campaign_report(self, fast_machine):
        from repro.campaign.executor import run_campaign

        spec = _spec(fast_machine, layout="migrating", disks_per_shard=2)
        plan = fleet_plan(spec)
        report = run_campaign(plan.tasks)
        assert report.ok
        fleet = report.fleet_summary()
        assert fleet is not None
        assert fleet["shard_tasks"] == len(plan.tasks)
        assert fleet["tenants"] == len(spec.tenants)
        merged = plan.assemble(report.payloads())
        assert fleet["pages_migrated"] == merged.pages_migrated
        assert fleet["migration_energy_j"] == pytest.approx(
            merged.migration_energy_j
        )
        assert report.replay_mode_counts() == {"multidisk": len(plan.tasks)}
        assert report.telemetry()["fleet"] == fleet
        assert "shard task(s)" in report.render_summary()

    def test_sim_only_campaigns_have_no_fleet_block(self, fast_machine):
        from repro.campaign.executor import run_campaign

        plan = fleet_plan(_spec(fast_machine))  # layout "sim"
        report = run_campaign(plan.tasks)
        assert report.ok
        fleet = report.fleet_summary()
        # "sim" shards are still fleet-shard tasks, just single-disk
        # kernel replays; migration stays zero.
        assert fleet is not None and fleet["pages_migrated"] == 0
        modes = report.replay_mode_counts()
        assert "multidisk" not in modes


class TestFleetReport:
    def _report(self, fast_machine):
        return run_fleet_monolithic(_spec(fast_machine, num_shards=3))

    def test_round_trip(self, fast_machine):
        report = self._report(fast_machine)
        payload = json.loads(json.dumps(report.to_payload()))
        again = FleetReport.from_payload(payload)
        assert again == report
        assert again.to_payload() == report.to_payload()

    def test_unpopulated_shards_sleep(self, fast_machine):
        # More shards than tenants guarantees empty ones.
        spec = _spec(fast_machine, num_shards=8)
        report = run_fleet_monolithic(spec)
        assert report.num_disks == 8
        idle = [
            fraction
            for count, fraction in zip(
                report.shard_tenants, report.standby_fractions
            )
            if count == 0
        ]
        assert idle and all(f == 1.0 for f in idle)
        assert report.replay_modes.count("idle") == report.shard_tenants.count(0)

    def test_render_mentions_the_essentials(self, fast_machine):
        report = self._report(fast_machine)
        text = report.render()
        assert "tenant(s)" in text
        assert "sleeping disks" in text
        assert "shard replay" in text

    def test_merge_validates_alignment(self):
        with pytest.raises(CampaignError):
            FleetReport.merge("x", [None], [1, 1], 100.0)
