"""The fleet engine: multidisk parity, migration accounting, telemetry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fleet.engine import FleetEngine, FleetResult
from repro.fleet.layout import (
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)
from repro.memory.system import NapMemorySystem
from repro.multidisk.engine import MultiDiskEngine
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.policies.pareto_timeout import ParetoTimeoutPolicy
from repro.traces.trace import Trace
from repro.units import MB


def _memory(machine):
    # Smaller than the 40-page hot set (160 MB at 4-MB pages), so the hot
    # phase keeps missing and the layouts differ in which disks that wakes.
    return NapMemorySystem(machine.memory, 128 * MB)


def _scattered_hot_trace(machine, periods=4):
    """A cold first-period scan over [0, 400), then pure hot traffic on
    [100, 140).  The hot set starts scattered off disk 0 (partition unit
    100 pages puts it on disk 1), so a migrating layout has work to do --
    and once it does it, the other spindles see no traffic at all."""
    rng = np.random.default_rng(42)
    period = machine.manager.period_s
    duration = periods * period
    cold_n, hot_n = 200, 400
    cold_pages = rng.integers(0, 400, size=cold_n)
    cold_times = np.sort(rng.uniform(0.0, period * 0.95, size=cold_n))
    hot_pages = rng.integers(100, 140, size=hot_n)
    hot_times = np.sort(
        rng.uniform(period, duration * 0.95, size=hot_n)
    )
    pages = np.concatenate([cold_pages, hot_pages]).astype(np.int64)
    times = np.concatenate([cold_times, hot_times])
    return (
        Trace(times=times, pages=pages, page_size=machine.page_bytes),
        float(duration),
    )


class TestStaticParity:
    """Static layout + a period-blind policy == the legacy engine, bitwise."""

    @pytest.mark.parametrize(
        "layout_factory",
        [
            lambda: PartitionedLayout(num_disks=3, pages_per_disk=140),
            lambda: StripedLayout(num_disks=3, extent_pages=4),
        ],
    )
    def test_bit_equal_to_multidisk(self, fast_machine, layout_factory):
        trace, duration = _scattered_hot_trace(fast_machine)
        policy = lambda: FixedTimeoutPolicy(
            fast_machine.disk.break_even_time_s
        )
        reference = MultiDiskEngine(
            fast_machine,
            _memory(fast_machine),
            layout_factory(),
            policy_factory=policy,
            label="parity",
        ).run(trace, duration_s=duration)
        fleet = FleetEngine(
            fast_machine,
            _memory(fast_machine),
            layout_factory(),
            policy_factory=policy,
            label="parity",
        ).run(trace, duration_s=duration)

        assert fleet.pages_migrated == 0
        assert fleet.migrations == ()
        assert fleet.timeout_updates == 0
        expected = reference.to_payload()
        actual = {
            k: v for k, v in fleet.to_payload().items() if k in expected
        }
        assert actual == expected


class TestMigration:
    def _run(self, machine, layout):
        trace, duration = _scattered_hot_trace(machine)
        engine = FleetEngine(
            machine,
            _memory(machine),
            layout,
            policy_factory=lambda: ParetoTimeoutPolicy(
                machine.disk.break_even_time_s,
                aggregation_window_s=machine.manager.aggregation_window_s,
            ),
        )
        return engine.run(trace, duration_s=duration)

    def test_migration_is_charged(self, fast_machine):
        result = self._run(
            fast_machine, MigratingLayout(num_disks=4, pages_per_disk=100)
        )
        assert result.pages_migrated > 0
        assert result.migration_active_s > 0
        assert result.migration_energy_j == (
            result.migration_active_s
            * fast_machine.disk.mode_power_watts["active"]
        )
        assert result.migrations
        # Conservation: every miss is one page, every migrated page is a
        # read plus a write.
        moved_bytes = sum(int(e.bytes_transferred) for e in result.per_disk)
        assert moved_bytes == (
            result.disk_page_accesses + 2 * result.pages_migrated
        ) * fast_machine.page_bytes

    def test_pareto_policies_refit_per_disk(self, fast_machine):
        result = self._run(
            fast_machine, MigratingLayout(num_disks=4, pages_per_disk=100)
        )
        assert result.timeout_updates > 0

    def test_migration_beats_striping_on_sleep(self, fast_machine):
        migrating = self._run(
            fast_machine, MigratingLayout(num_disks=4, pages_per_disk=100)
        )
        striped = self._run(
            fast_machine, StripedLayout(num_disks=4, extent_pages=4)
        )
        assert migrating.sleeping_disks > striped.sleeping_disks

    def test_result_round_trips_through_json(self, fast_machine):
        result = self._run(
            fast_machine, MigratingLayout(num_disks=4, pages_per_disk=100)
        )
        payload = json.loads(json.dumps(result.to_payload()))
        again = FleetResult.from_payload(payload)
        assert again == result
        assert again.to_payload() == result.to_payload()
