"""Property-based invariants of the fleet layouts and report serialization."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.energy import DiskEnergy
from repro.fleet.engine import MultiDiskResult
from repro.fleet.layout import (
    MigratingLayout,
    PartitionedLayout,
    StripedLayout,
)
from repro.fleet.sharding import FleetReport

pages = st.integers(min_value=0, max_value=5000)

static_layouts = st.one_of(
    st.builds(
        PartitionedLayout,
        num_disks=st.integers(1, 8),
        pages_per_disk=st.integers(1, 64),
    ),
    st.builds(
        StripedLayout,
        num_disks=st.integers(1, 8),
        extent_pages=st.integers(1, 64),
    ),
)

migrating_layouts = st.builds(
    MigratingLayout,
    num_disks=st.integers(1, 8),
    pages_per_disk=st.integers(1, 64),
)


class TestLayoutInvariants:
    @given(layout=static_layouts, page_list=st.lists(pages, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_static_layouts_map_to_one_in_range_disk(self, layout, page_list):
        for page in page_list:
            disk = layout.disk_of(page)
            assert 0 <= disk < layout.num_disks
            assert layout.disk_of(page) == disk  # lookups never mutate

    @given(
        layout=migrating_layouts,
        accesses=st.lists(pages, min_size=1, max_size=80),
        boundaries=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_migrating_layout_stable_within_a_period(
        self, layout, accesses, boundaries
    ):
        for _ in range(boundaries):
            # Within a period, placements are frozen: record_access and
            # plan_rebalance must not change any mapping.
            before = {page: layout.disk_of(page) for page in accesses}
            for page in accesses:
                layout.record_access(page)
                assert layout.disk_of(page) == before[page]
            layout.plan_rebalance()
            assert {p: layout.disk_of(p) for p in accesses} == before
            layout.apply_moves(layout.plan_rebalance())
            # After the boundary the mapping may differ but stays valid.
            for page in accesses:
                assert 0 <= layout.disk_of(page) < layout.num_disks

    @given(
        layout=migrating_layouts,
        accesses=st.lists(pages, min_size=1, max_size=80),
    )
    @settings(max_examples=80, deadline=None)
    def test_planned_moves_are_consistent(self, layout, accesses):
        for page in accesses:
            layout.record_access(page)
        moves = layout.plan_rebalance()
        seen = set()
        for page, source, destination in moves:
            assert layout.disk_of(page) == source
            assert 0 <= destination < layout.num_disks
            assert source != destination
            assert page not in seen  # each page moves at most once
            seen.add(page)


def _energy(rng_floats, requests, cycles):
    return DiskEnergy(
        active_s=rng_floats[0],
        idle_s=rng_floats[1],
        standby_s=rng_floats[2],
        transition_s=rng_floats[3],
        spin_down_cycles=cycles,
        requests=requests,
        bytes_transferred=requests * 4096,
    )


small_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSerializationRoundTrips:
    @given(
        disks=st.integers(1, 4),
        floats=st.lists(small_floats, min_size=4, max_size=4),
        requests=st.integers(0, 10**6),
        cycles=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_multidisk_result(self, disks, floats, requests, cycles):
        result = MultiDiskResult(
            label="prop",
            duration_s=600.0,
            num_disks=disks,
            memory_energy_j=floats[0],
            disk_energy_j=floats[1],
            per_disk=[_energy(floats, requests, cycles) for _ in range(disks)],
            total_accesses=requests * 2,
            disk_page_accesses=requests,
            mean_latency_s=floats[2],
            long_latency=cycles,
            spin_down_cycles=cycles * disks,
            standby_fractions=[0.25] * disks,
        )
        payload = json.loads(json.dumps(result.to_payload()))
        assert MultiDiskResult.from_payload(payload) == result

    @given(
        shards=st.integers(1, 5),
        floats=st.lists(small_floats, min_size=4, max_size=4),
        migrated=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_fleet_report(self, shards, floats, migrated):
        report = FleetReport(
            label="prop",
            num_shards=shards,
            num_tenants=shards * 2,
            duration_s=600.0,
            shard_tenants=tuple([2] * shards),
            memory_energy_j=floats[0],
            disk_energy_j=floats[1],
            total_accesses=100,
            disk_page_accesses=40,
            mean_latency_s=floats[2],
            long_latency=3,
            spin_down_cycles=7,
            standby_fractions=tuple([0.75] * shards),
            replay_modes=tuple(["vectorized"] * shards),
            pages_migrated=migrated,
            migration_energy_j=floats[3],
        )
        payload = json.loads(json.dumps(report.to_payload()))
        assert FleetReport.from_payload(payload) == report
