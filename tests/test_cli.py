"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments_and_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("fig7", "table5", "ablation", "JOINT", "2TFM-8GB"):
            assert token in out


class TestExperiment:
    def test_runs_fig5(self, capsys):
        assert main(["experiment", "fig5", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "t_opt_eq5_s" in out

    def test_unknown_experiment_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["experiment", "fig99"])


class TestSimulate:
    def test_simulate_fixed_method(self, capsys):
        code = main(
            [
                "simulate",
                "2TFM-8GB",
                "--dataset-gb",
                "2",
                "--rate-mb",
                "20",
                "--periods",
                "2",
                "--warmup-periods",
                "1",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total energy" in out
        assert "2TFM-8GB" in out

    def test_simulate_joint(self, capsys):
        code = main(
            [
                "simulate",
                "JOINT",
                "--dataset-gb",
                "2",
                "--rate-mb",
                "20",
                "--periods",
                "2",
                "--warmup-periods",
                "1",
            ]
        )
        assert code == 0
        assert "JOINT" in capsys.readouterr().out

    def test_bad_method_name(self):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            main(["simulate", "NOPE-1GB", "--periods", "1"])


class TestReport:
    def test_report_with_baseline(self, capsys):
        code = main(
            [
                "report",
                "2TFM-8GB",
                "--dataset-gb",
                "2",
                "--rate-mb",
                "20",
                "--periods",
                "2",
                "--warmup-periods",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "energy (kJ)" in out
        assert "vs ALWAYS-ON" in out

    def test_report_baseline_itself(self, capsys):
        code = main(
            [
                "report",
                "ALWAYS-ON",
                "--dataset-gb",
                "2",
                "--rate-mb",
                "20",
                "--periods",
                "1",
                "--warmup-periods",
                "0",
            ]
        )
        assert code == 0
        assert "vs ALWAYS-ON" not in capsys.readouterr().out


class TestTrace:
    def test_generate_and_characterise(self, capsys, tmp_path):
        save = tmp_path / "t.npz"
        code = main(
            [
                "trace",
                "--dataset-gb",
                "1",
                "--rate-mb",
                "10",
                "--duration-s",
                "300",
                "--save",
                str(save),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out
        assert save.exists()

    def test_import_block_csv(self, capsys, tmp_path):
        path = tmp_path / "io.csv"
        rows = ["time,offset,size"]
        for i in range(50):
            rows.append(f"{i * 2.0},{i * 4 * 1024 * 1024},{4 * 1024 * 1024}")
        path.write_text("\n".join(rows) + "\n")
        code = main(["trace", "--block-csv", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "workload:" in out
        assert "io.csv" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bench_quick_writes_documents(self, capsys, tmp_path):
        import json

        code = main(
            ["bench", "--suite", "sweep", "--quick",
             "--out-dir", str(tmp_path)]
        )
        assert code == 0
        doc = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        assert doc["suite"] == "sweep" and doc["quick"] is True
        assert doc["entries"]["sweep_speedup"]["value"] > 0
        assert "sweep_speedup" in capsys.readouterr().out

    def test_bench_check_against_own_baseline(self, capsys, tmp_path):
        out = tmp_path / "out"
        base = tmp_path / "baselines"
        assert main(
            ["bench", "--suite", "micro", "--quick",
             "--out-dir", str(out), "--update-baselines",
             "--baseline-dir", str(base)]
        ) == 0
        assert main(
            ["bench", "--suite", "micro", "--quick",
             "--out-dir", str(out), "--check",
             "--baseline-dir", str(base)]
        ) == 0
        assert "baseline check [micro]" in capsys.readouterr().out

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestSuiteOption:
    def test_simulate_with_suite(self, capsys):
        code = main(
            [
                "simulate",
                "2TFM-8GB",
                "--suite",
                "small-dataset",
                "--periods",
                "1",
                "--warmup-periods",
                "0",
            ]
        )
        assert code == 0
        assert "total energy" in capsys.readouterr().out

    def test_unknown_suite_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            main(["simulate", "JOINT", "--suite", "nope", "--periods", "1"])

    def test_list_shows_suites(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "workload suites" in out
        assert "diurnal" in out


class TestVerifyCommand:
    def test_verify_passes_on_clean_code(self, capsys):
        code = main(["verify", "--seeds", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        for check in ("stack", "intervals", "predictor", "joint", "energy"):
            assert check in out

    def test_verify_check_subset(self, capsys):
        code = main(["verify", "--seeds", "2", "--checks", "stack,intervals"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stack" in out and "intervals" in out
        assert "energy" not in out

    def test_verify_exits_nonzero_on_divergence(self, capsys, monkeypatch):
        from repro.cache.stack_distance import StackDistanceTracker

        original = StackDistanceTracker.access

        def buggy(self, page):
            depth = original(self, page)
            return depth + 1 if depth >= 1 else depth

        monkeypatch.setattr(StackDistanceTracker, "access", buggy)
        code = main(["verify", "--seeds", "10", "--checks", "stack"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "reproducer" in out

    def test_verify_progress_flag(self, capsys):
        code = main(["verify", "--seeds", "2", "--checks", "stack", "--progress"])
        assert code == 0
        assert "seed 0" in capsys.readouterr().out

    def test_verify_jobs_matches_serial_output(self, capsys):
        args = ["verify", "--seeds", "4", "--checks", "stack,intervals"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_verify_campaign_path_exits_nonzero_on_divergence(
        self, capsys, monkeypatch
    ):
        from repro.cache.stack_distance import StackDistanceTracker

        original = StackDistanceTracker.access

        def buggy(self, page):
            depth = original(self, page)
            return depth + 1 if depth >= 1 else depth

        monkeypatch.setattr(StackDistanceTracker, "access", buggy)
        # jobs=1 keeps execution in-process so the monkeypatch applies;
        # --chunk forces the campaign code path regardless.
        code = main(
            ["verify", "--seeds", "10", "--checks", "stack", "--chunk", "3"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out and "reproducer" in out


class TestRegretCommand:
    _ARGS = [
        "regret",
        "JOINT",
        "--dataset-gb",
        "2",
        "--rate-mb",
        "20",
        "--periods",
        "2",
        "--seed",
        "3",
    ]

    def test_regret_reports_the_oracle_gap(self, capsys):
        assert main(self._ARGS) == 0
        out = capsys.readouterr().out
        assert "regret report: JOINT" in out
        assert "vs OPT" in out
        assert "ratio" in out
        assert "lower" in out

    def test_regret_fixed_method(self, capsys):
        args = list(self._ARGS)
        args[1] = "2TFM-8GB"
        assert main(args) == 0
        assert "regret report: 2TFM-8GB" in capsys.readouterr().out

    def test_verify_quick_flag(self, capsys):
        code = main(["verify", "--quick", "--checks", "optimal"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "PASS" in out

    def test_verify_quick_conflicts_yield_to_explicit_values(self, capsys):
        # --quick only fills in defaults; explicit --seeds still wins.
        code = main(["verify", "--quick", "--seeds", "2", "--checks", "stack"])
        assert code == 0
        assert "2 seed(s)" in capsys.readouterr().out


class TestCampaignCommand:
    def test_campaign_runs_prints_and_caches(self, capsys, tmp_path):
        args = [
            "campaign",
            "fig5",
            "--profile",
            "quick",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--out",
            str(tmp_path / "campaign.json"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out
        assert "campaign" in out and "hit ratio" in out

        import json

        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "cache hits    1" in warm_out
        telemetry = json.loads((tmp_path / "campaign.json").read_text())
        assert telemetry["hit_ratio"] >= 0.95

    def test_campaign_resume(self, capsys, tmp_path):
        base = [
            "campaign",
            "fig5",
            "--profile",
            "quick",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(base + ["--run-id", "r1"]) == 0
        capsys.readouterr()
        for entry in (tmp_path / "cache" / "objects").rglob("*.json"):
            entry.unlink()
        assert main(base + ["--resume", "r1"]) == 0
        assert "journal hits  1" in capsys.readouterr().out

    def test_campaign_unknown_name_fails_fast(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["campaign", "fig99", "--no-cache"])

    def test_experiment_with_jobs_uses_campaign(self, capsys, tmp_path):
        args = [
            "experiment",
            "fig5",
            "--profile",
            "quick",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Pareto" in out and "campaign" in out
