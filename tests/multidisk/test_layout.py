"""Data layouts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.multidisk.layout import PartitionedLayout, StripedLayout


class TestPartitioned:
    def test_ranges(self):
        layout = PartitionedLayout(num_disks=3, pages_per_disk=10)
        assert layout.disk_of(0) == 0
        assert layout.disk_of(9) == 0
        assert layout.disk_of(10) == 1
        assert layout.disk_of(29) == 2

    def test_overflow_wraps_to_last_disk(self):
        layout = PartitionedLayout(num_disks=2, pages_per_disk=10)
        assert layout.disk_of(1000) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            PartitionedLayout(num_disks=0, pages_per_disk=10)
        with pytest.raises(ConfigError):
            PartitionedLayout(num_disks=2, pages_per_disk=0)

    def test_negative_page_is_a_runtime_error(self):
        # A negative page is corrupt *trace* data hitting the replay, not
        # a misconfiguration: it must raise SimulationError (regression
        # test -- this used to raise ConfigError).
        with pytest.raises(SimulationError):
            PartitionedLayout(num_disks=2, pages_per_disk=10).disk_of(-1)


class TestStriped:
    def test_round_robin_extents(self):
        layout = StripedLayout(num_disks=3, extent_pages=2)
        assert [layout.disk_of(p) for p in range(8)] == [0, 0, 1, 1, 2, 2, 0, 0]

    def test_single_page_extents(self):
        layout = StripedLayout(num_disks=2, extent_pages=1)
        assert [layout.disk_of(p) for p in range(4)] == [0, 1, 0, 1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            StripedLayout(num_disks=2, extent_pages=0)

    def test_negative_page_is_a_runtime_error(self):
        with pytest.raises(SimulationError):
            StripedLayout(num_disks=2).disk_of(-5)

    def test_balanced_distribution(self):
        layout = StripedLayout(num_disks=4, extent_pages=8)
        counts = [0] * 4
        for page in range(4 * 8 * 25):
            counts[layout.disk_of(page)] += 1
        assert len(set(counts)) == 1
