"""Disk array and the multi-disk engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk.service import ServiceModel
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem
from repro.multidisk.array import DiskArray
from repro.multidisk.engine import MultiDiskEngine
from repro.multidisk.layout import PartitionedLayout, StripedLayout
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, MB


class TestDiskArray:
    @pytest.fixture()
    def array(self, machine):
        service = ServiceModel(machine.disk, machine.page_bytes)
        layout = PartitionedLayout(num_disks=2, pages_per_disk=100)
        return DiskArray(machine.disk, service, layout)

    def test_routing(self, array):
        array.submit(1.0, page=5)
        array.submit(2.0, page=150)
        assert array.disks[0].energy.requests == 1
        assert array.disks[1].energy.requests == 1

    def test_per_disk_timeouts(self, array):
        array.set_timeout(0.0, 0, 5.0)
        array.submit(0.0, page=5)  # disk 0 busy then idle
        array.advance(100.0)
        assert array.disks[0].is_spun_down
        assert not array.disks[1].is_spun_down  # no timeout installed

    def test_aggregate_energy(self, array):
        array.submit(1.0, page=5)
        array.submit(2.0, page=150)
        array.finalize(10.0)
        total = array.aggregate_energy()
        assert total.requests == 2
        # Two spindles: accounted time is twice the window.
        assert total.accounted_s == pytest.approx(20.0, abs=0.1)
        assert array.total_joules() > 0

    def test_bad_disk_index(self, array):
        with pytest.raises(SimulationError):
            array.set_timeout(0.0, 5, 1.0)


class TestMultiDiskEngine:
    def _run(self, machine, layout, trace, duration, warmup=0.0):
        memory = NapMemorySystem(machine.memory, 8 * GB)
        engine = MultiDiskEngine(
            machine,
            memory,
            layout,
            policy_factory=lambda: FixedTimeoutPolicy(
                machine.disk.break_even_time_s
            ),
        )
        return engine.run(trace, duration_s=duration, warmup_s=warmup)

    def test_counts_and_energy(self, fast_machine):
        trace = Trace(
            times=np.arange(0.0, 100.0, 5.0),
            pages=np.arange(20, dtype=np.int64),
            page_size=fast_machine.page_bytes,
        )
        layout = PartitionedLayout(num_disks=2, pages_per_disk=10)
        result = self._run(fast_machine, layout, trace, duration=240.0)
        assert result.total_accesses == 20
        assert result.disk_page_accesses == 20  # all cold
        assert result.num_disks == 2
        assert len(result.per_disk) == 2
        assert result.per_disk[0].requests == 10
        assert result.per_disk[1].requests == 10
        assert result.total_energy_j > 0

    def test_partitioning_lets_cold_disks_sleep(self, fast_machine):
        """The [31]-style skew effect: hot-concentrating layouts park the
        cold spindles; striping keeps every spindle awake."""
        trace = generate_trace(
            dataset_bytes=8 * GB,
            data_rate=20 * MB,
            duration_s=960.0,
            popularity=0.1,
            page_size=fast_machine.page_bytes,
            file_scale=fast_machine.scale,
            seed=55,
        )
        pages_total = 8 * GB // fast_machine.page_bytes
        partitioned = self._run(
            fast_machine,
            PartitionedLayout(num_disks=4, pages_per_disk=pages_total // 4),
            trace,
            duration=960.0,
            warmup=240.0,
        )
        striped = self._run(
            fast_machine,
            StripedLayout(num_disks=4, extent_pages=4),
            trace,
            duration=960.0,
            warmup=240.0,
        )
        # Same cache, same workload: identical miss streams.
        assert partitioned.disk_page_accesses == striped.disk_page_accesses
        # Partitioning concentrates idleness: more disks mostly asleep,
        # and lower total disk energy.
        assert partitioned.sleeping_disks >= striped.sleeping_disks
        assert partitioned.disk_energy_j < striped.disk_energy_j

    def test_warmup_validation(self, fast_machine):
        trace = Trace(
            times=np.array([1.0]),
            pages=np.array([1], dtype=np.int64),
            page_size=fast_machine.page_bytes,
        )
        layout = PartitionedLayout(num_disks=2, pages_per_disk=10)
        with pytest.raises(SimulationError):
            self._run(fast_machine, layout, trace, duration=100.0, warmup=200.0)


class TestWriteGuard:
    def test_write_traces_rejected_explicitly(self, fast_machine):
        trace = Trace(
            times=np.array([1.0, 2.0]),
            pages=np.array([1, 2], dtype=np.int64),
            page_size=fast_machine.page_bytes,
            writes=np.array([True, False]),
        )
        memory = NapMemorySystem(fast_machine.memory, 8 * GB)
        engine = MultiDiskEngine(
            fast_machine,
            memory,
            PartitionedLayout(num_disks=2, pages_per_disk=10),
            policy_factory=lambda: FixedTimeoutPolicy(11.7),
        )
        with pytest.raises(SimulationError, match="write-back"):
            engine.run(trace, duration_s=100.0)

    def test_read_only_flagged_trace_accepted(self, fast_machine):
        trace = Trace(
            times=np.array([1.0]),
            pages=np.array([1], dtype=np.int64),
            page_size=fast_machine.page_bytes,
            writes=np.array([False]),
        )
        memory = NapMemorySystem(fast_machine.memory, 8 * GB)
        engine = MultiDiskEngine(
            fast_machine,
            memory,
            PartitionedLayout(num_disks=2, pages_per_disk=10),
            policy_factory=lambda: FixedTimeoutPolicy(11.7),
        )
        result = engine.run(trace, duration_s=100.0)
        assert result.total_accesses == 1
