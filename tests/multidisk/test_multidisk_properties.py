"""Property-based invariants of the disk array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.service import ServiceModel
from repro.memory.system import NapMemorySystem
from repro.multidisk.array import DiskArray
from repro.multidisk.engine import MultiDiskEngine
from repro.multidisk.layout import PartitionedLayout, StripedLayout
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.traces.trace import Trace
from repro.units import GB

events = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=60.0),
        st.integers(min_value=0, max_value=60),
    ),
    min_size=1,
    max_size=40,
)

layouts = st.sampled_from(
    [
        PartitionedLayout(num_disks=3, pages_per_disk=20),
        StripedLayout(num_disks=3, extent_pages=4),
        StripedLayout(num_disks=2, extent_pages=1),
    ]
)


class TestArrayConservation:
    @given(schedule=events, layout=layouts)
    @settings(max_examples=60, deadline=None)
    def test_per_disk_time_conservation(self, machine, schedule, layout):
        service = ServiceModel(machine.disk, machine.page_bytes)
        array = DiskArray(machine.disk, service, layout)
        array.set_all_timeouts(0.0, machine.disk.break_even_time_s)
        now = 0.0
        for gap, page in schedule:
            now += gap
            array.submit(now, page)
        end = now + 50.0
        array.finalize(end)
        for disk in array.disks:
            accounted = (
                disk.energy.active_s
                + disk.energy.idle_s
                + disk.energy.standby_s
                + disk.energy.transition_s
            )
            assert accounted >= end - 1e-6
            assert accounted <= end + machine.disk.spin_up_time_s + 1e-6

    @given(schedule=events, layout=layouts)
    @settings(max_examples=60, deadline=None)
    def test_requests_partition_exactly(self, machine, schedule, layout):
        service = ServiceModel(machine.disk, machine.page_bytes)
        array = DiskArray(machine.disk, service, layout)
        now = 0.0
        for gap, page in schedule:
            now += gap
            array.submit(now, page)
        total = array.aggregate_energy()
        assert total.requests == len(schedule)
        # Every request landed on the disk the layout names.
        by_disk = [d.energy.requests for d in array.disks]
        expected = [0] * array.num_disks
        for _, page in schedule:
            expected[layout.disk_of(page)] += 1
        assert by_disk == expected


class TestEngineTotals:
    @given(schedule=events)
    @settings(max_examples=25, deadline=None)
    def test_engine_accounts_every_access(self, fast_machine, schedule):
        times = np.cumsum([gap for gap, _ in schedule])
        pages = np.asarray([page for _, page in schedule], dtype=np.int64)
        trace = Trace(
            times=times, pages=pages, page_size=fast_machine.page_bytes
        )
        memory = NapMemorySystem(fast_machine.memory, 8 * GB)
        engine = MultiDiskEngine(
            fast_machine,
            memory,
            StripedLayout(num_disks=2, extent_pages=2),
            policy_factory=lambda: FixedTimeoutPolicy(11.7),
        )
        result = engine.run(trace, duration_s=float(times[-1]) + 10.0)
        assert result.total_accesses == len(schedule)
        assert result.disk_page_accesses == sum(
            e.requests for e in result.per_disk
        )
        assert result.disk_energy_j > 0
