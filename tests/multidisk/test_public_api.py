"""The multidisk package's public surface, cross-checked against the
single-disk engine's replay modes.

A one-disk array with the same cache must reproduce the single-disk
engine's miss stream regardless of which replay loop the single-disk
side took (scalar or vectorized) -- the multidisk engine is always
scalar, so this pins the package to the kernels the rest of the repo
trusts.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.multidisk as multidisk
from repro.memory.system import NapMemorySystem
from repro.multidisk import (
    DataLayout,
    DiskArray,
    MultiDiskEngine,
    MultiDiskResult,
    PartitionedLayout,
    StripedLayout,
)
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.units import GB, MB


class TestSurface:
    def test_all_exports_resolve(self):
        for name in multidisk.__all__:
            assert getattr(multidisk, name) is not None

    def test_layouts_are_data_layouts(self):
        assert issubclass(PartitionedLayout, DataLayout)
        assert issubclass(StripedLayout, DataLayout)

    def test_result_type_is_exported(self):
        assert MultiDiskResult.__name__ in multidisk.__all__
        assert DiskArray.__name__ in multidisk.__all__


class TestCrossEngineAgreement:
    """One disk, same cache: multidisk == single-disk, in every mode."""

    @pytest.fixture(scope="class")
    def trace(self, machine):
        return generate_trace(
            dataset_bytes=4 * GB,
            data_rate=60 * MB,
            duration_s=600.0,
            page_size=machine.page_bytes,
            seed=21,
            file_scale=machine.scale,
        )

    def _multi(self, machine, trace, num_disks=1):
        pages_total = int(np.ceil(16 * GB / machine.page_bytes))
        engine = MultiDiskEngine(
            machine,
            NapMemorySystem(machine.memory, 8 * GB),
            PartitionedLayout(
                num_disks=num_disks,
                pages_per_disk=pages_total // num_disks + 1,
            ),
            policy_factory=lambda: FixedTimeoutPolicy(
                machine.disk.break_even_time_s
            ),
        )
        return engine.run(trace, duration_s=600.0)

    def test_miss_stream_matches_both_replay_modes(self, machine, trace):
        multi = self._multi(machine, trace)
        fast = run_method(
            "2TFM-8GB", trace, machine, duration_s=600.0,
            warm_start=False, profile="auto",
        )
        slow = run_method(
            "2TFM-8GB", trace, machine, duration_s=600.0,
            warm_start=False, profile=None,
        )
        assert fast.replay_mode == "missrun"
        assert slow.replay_mode == "scalar"
        assert fast.disk_page_accesses == slow.disk_page_accesses
        assert multi.disk_page_accesses == fast.disk_page_accesses
        assert multi.total_accesses == fast.total_accesses

    def test_epoch_mode_run_sees_same_workload(self, machine, trace):
        # The joint manager takes the epoch kernel; its workload counters
        # must agree with the (scalar) multidisk replay of the same trace.
        joint = run_method(
            "JOINT", trace, machine, duration_s=600.0, warm_start=False
        )
        multi = self._multi(machine, trace)
        assert joint.replay_mode == "epoch"
        assert joint.total_accesses == multi.total_accesses
        assert joint.duration_s == multi.duration_s

    def test_splitting_the_array_preserves_the_miss_stream(self, machine, trace):
        one = self._multi(machine, trace, num_disks=1)
        four = self._multi(machine, trace, num_disks=4)
        # Layout only routes misses; the shared cache decides them.
        assert four.disk_page_accesses == one.disk_page_accesses
        assert four.num_disks == 4
        assert len(four.per_disk) == 4
        assert sum(d.requests for d in four.per_disk) == sum(
            d.requests for d in one.per_disk
        )
