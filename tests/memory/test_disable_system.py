"""DisableMemorySystem: the DS policy loses data after its timeout."""

from __future__ import annotations

import pytest

from repro.config.memory_spec import MemorySpec
from repro.memory.system import DisableMemorySystem
from repro.units import KB


@pytest.fixture()
def spec():
    # 2 banks x 4 pages.
    return MemorySpec(
        installed_bytes=32 * KB,
        bank_bytes=16 * KB,
        chip_bytes=16 * KB,
        page_bytes=4 * KB,
    )


class TestDataLoss:
    def test_break_even_timeout_matches_paper(self):
        # 7.7 J / 10.5 mW = 732 s (paper Section V-A).
        spec = MemorySpec()
        system = DisableMemorySystem(spec)
        assert system.timeout_s == pytest.approx(732.0, rel=0.01)

    def test_idle_bank_loses_data(self, spec):
        system = DisableMemorySystem(spec, timeout_s=100.0)
        assert system.access(0.0, 0) is False  # load into bank 0
        assert system.access(1.0, 0) is True  # still resident
        # Idle well past the timeout: the bank was disabled, data gone.
        assert system.access(500.0, 0) is False
        assert system.invalidation_misses == 1
        assert system.banks_disabled >= 1

    def test_touching_keeps_bank_alive(self, spec):
        system = DisableMemorySystem(spec, timeout_s=100.0)
        system.access(0.0, 0)
        for t in (50.0, 100.0, 150.0, 200.0):
            assert system.access(t, 0) is True

    def test_bank_invalidation_drops_all_its_pages(self, spec):
        system = DisableMemorySystem(spec, timeout_s=100.0)
        # Fill bank 0 (4 pages land together via fill-bank placement).
        for page in range(4):
            system.access(0.0, page)
        # Much later: the first access misses and drops the whole bank.
        assert system.access(500.0, 0) is False
        # Page 1 was in the same bank: also gone (needs a reload) --
        # unless it landed in the fresh bank the reload re-opened.
        assert system.access(500.1, 1) is False

    def test_energy_stops_at_disable_time(self, spec):
        system = DisableMemorySystem(spec, timeout_s=100.0)
        system.finalize(1000.0)
        # Both banks nap for 100 s then go dark.
        nap = spec.mode_power_watts["nap"]
        assert system.energy.static_j == pytest.approx(2 * nap * 100.0)

    def test_energy_below_nap_baseline(self, spec):
        from repro.memory.system import NapMemorySystem

        ds = DisableMemorySystem(spec, timeout_s=100.0)
        nap = NapMemorySystem(spec, spec.installed_bytes)
        ds.finalize(10_000.0)
        nap.finalize(10_000.0)
        assert ds.energy.static_j < nap.energy.static_j


class TestPlacement:
    def test_eviction_frees_frames(self, spec):
        system = DisableMemorySystem(spec, timeout_s=1e9)
        # Capacity 8 pages; access 10 distinct pages -> 2 evictions.
        for i in range(10):
            system.access(float(i), i)
        assert len(system.cache) == 8
        # Oldest two were evicted.
        assert system.access(20.0, 0) is False
        # Recent ones hit.
        assert system.access(21.0, 9) is True

    def test_prefill_places_pages_in_banks(self, spec):
        system = DisableMemorySystem(spec, timeout_s=1e9)
        system.prefill([1, 2, 3])
        assert system.access(0.0, 3) is True
        assert system.energy.dynamic_j == pytest.approx(
            spec.dynamic_energy_per_access
        )


class TestLazyDisablePaths:
    def test_miss_load_reenables_idle_bank_slot(self, spec):
        """A load can land in a bank that lazily disabled: the placement
        re-enables it (last_access moves) without losing other banks."""
        system = DisableMemorySystem(spec, timeout_s=50.0)
        # Fill both banks (8 pages).
        for page in range(8):
            system.access(0.0, page)
        # Far later, a brand-new page loads; its frame comes from an LRU
        # eviction, and the touched bank is alive again afterwards.
        assert system.access(1000.0, 99) is False
        assert system.access(1000.1, 99) is True

    def test_energy_between_checkpoint_and_disable(self, spec):
        system = DisableMemorySystem(spec, timeout_s=100.0)
        system.checkpoint(50.0)
        mid = system.energy.static_j
        system.finalize(400.0)
        # Bank power accrues only until the 100-s disable time.
        nap = spec.bank_power("nap")
        assert mid == pytest.approx(2 * nap * 50.0)
        assert system.energy.static_j == pytest.approx(2 * nap * 100.0)

    def test_counters_track_disables(self, spec):
        system = DisableMemorySystem(spec, timeout_s=10.0)
        system.access(0.0, 0)
        system.access(100.0, 0)  # bank died at t=10
        assert system.banks_disabled >= 1
        assert system.invalidation_misses == 1

    def test_dirty_page_survives_bank_death_via_flush_queue(self, spec):
        system = DisableMemorySystem(spec, timeout_s=10.0)
        system.access_rw(0.0, 0, is_write=True)
        assert system.dirty_pages == 1
        # The bank dies; the dirty page must land in the flush queue, not
        # vanish.
        assert system.access_rw(100.0, 0, is_write=False) is False
        assert 0 in system.take_pending_flushes()
        assert system.dirty_pages <= 1  # only the re-read copy could be dirty
