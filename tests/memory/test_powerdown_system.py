"""PowerDownMemorySystem: the PD policy's energy model."""

from __future__ import annotations

import pytest

from repro.config.memory_spec import MemorySpec
from repro.memory.system import NapMemorySystem, PowerDownMemorySystem
from repro.units import KB


@pytest.fixture()
def spec():
    return MemorySpec(
        installed_bytes=64 * KB,
        bank_bytes=16 * KB,
        chip_bytes=16 * KB,
        page_bytes=4 * KB,
    )


class TestEnergy:
    def test_idle_banks_converge_to_powerdown_power(self, spec):
        # With no accesses, every bank naps for one timeout then powers
        # down: energy ~ powerdown power x time for long horizons.
        system = PowerDownMemorySystem(spec)
        system.finalize(10_000.0)
        pd_power = spec.mode_power_watts["powerdown"] * spec.num_banks
        assert system.energy.static_j == pytest.approx(
            pd_power * 10_000.0, rel=0.01
        )

    def test_paper_30_percent_of_nap(self, spec):
        # Paper Section V-B1: power-down banks consume 30% of nap power,
        # so an idle PD memory sits at about a third of the nap baseline.
        pd = PowerDownMemorySystem(spec)
        nap = NapMemorySystem(spec, spec.installed_bytes)
        pd.finalize(10_000.0)
        nap.finalize(10_000.0)
        ratio = pd.energy.static_j / nap.energy.static_j
        assert ratio == pytest.approx(3.5 / 10.5, rel=0.02)

    def test_frequent_access_keeps_bank_in_nap(self, spec):
        # Accesses every 50 us (under the ~129-us timeout) to one bank:
        # that bank never powers down.
        system = PowerDownMemorySystem(spec)
        times = [i * 50e-6 for i in range(101)]
        for t in times:
            system.access(t, 0)  # page 0 -> bank 0
        window = times[-1]
        # Bank 0's static share over the window is nap power; extract it
        # by subtracting the other banks' (powerdown after timeout) share.
        system.finalize(window)
        nap_share = spec.mode_power_watts["nap"] * window
        assert system.energy.static_j >= nap_share * 0.99

    def test_wake_transition_charged(self, spec):
        system = PowerDownMemorySystem(spec)
        system.access(10.0, 0)  # bank 0 idle 10 s >> timeout: wake
        assert system.energy.transitions == 1
        system.access(10.0 + 20e-6, 0)  # within timeout: no new wake
        assert system.energy.transitions == 1

    def test_data_survives_powerdown(self, spec):
        system = PowerDownMemorySystem(spec)
        assert system.access(0.0, 3) is False
        # Hours later the page is still resident (power-down keeps data).
        assert system.access(3600.0, 3) is True

    def test_checkpoint_then_finalize_no_double_count(self, spec):
        a = PowerDownMemorySystem(spec)
        a.access(1.0, 0)
        a.checkpoint(50.0)
        a.access(60.0, 0)
        a.finalize(100.0)

        b = PowerDownMemorySystem(spec)
        b.access(1.0, 0)
        b.access(60.0, 0)
        b.finalize(100.0)
        assert a.energy.static_j == pytest.approx(b.energy.static_j)

    def test_not_resizable(self, spec):
        from repro.errors import SimulationError

        system = PowerDownMemorySystem(spec)
        assert system.resizable is False
        with pytest.raises(SimulationError):
            system.resize(0.0, 16 * KB)
