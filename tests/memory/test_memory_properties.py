"""Property-based invariants of the memory systems.

Random access/resize schedules must keep energy accounting consistent:
non-negative buckets, nap system's static energy exactly integrable from
its resize history, PD bounded between power-down and nap baselines, and
the DS system never exceeding the nap baseline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.memory_spec import MemorySpec
from repro.memory.system import (
    DisableMemorySystem,
    NapMemorySystem,
    PowerDownMemorySystem,
)
from repro.units import KB


def small_spec():
    return MemorySpec(
        installed_bytes=64 * KB,
        bank_bytes=16 * KB,
        chip_bytes=16 * KB,
        page_bytes=4 * KB,
    )


events = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=50.0),  # gap to next event
        st.integers(min_value=0, max_value=30),  # page
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=60,
)


class TestNapIntegral:
    @given(
        schedule=events,
        resize_banks=st.lists(
            st.integers(min_value=0, max_value=4), min_size=0, max_size=4
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_static_energy_integrates_exactly(self, schedule, resize_banks):
        spec = small_spec()
        system = NapMemorySystem(spec, 64 * KB)
        nap = spec.bank_power("nap")

        expected = 0.0
        banks = 4
        last = 0.0
        now = 0.0
        resizes = list(resize_banks)
        for index, (gap, page, is_write) in enumerate(schedule):
            now += gap
            system.access_rw(now, page, is_write)
            if resizes and index % 7 == 3:
                new_banks = resizes.pop()
                expected += nap * banks * (now - last)
                system.resize(now, new_banks * 16 * KB)
                banks = new_banks
                last = now
        end = now + 10.0
        expected += nap * banks * (end - last)
        system.finalize(end)
        assert system.energy.static_j == pytest.approx(expected)

    @given(schedule=events)
    @settings(max_examples=50, deadline=None)
    def test_dynamic_energy_counts_every_access(self, schedule):
        spec = small_spec()
        system = NapMemorySystem(spec, 64 * KB)
        now = 0.0
        for gap, page, is_write in schedule:
            now += gap
            system.access_rw(now, page, is_write)
        assert system.energy.accesses == len(schedule)
        assert system.energy.dynamic_j == pytest.approx(
            len(schedule) * spec.dynamic_energy_per_access
        )


class TestPolicyOrdering:
    @given(schedule=events)
    @settings(max_examples=60, deadline=None)
    def test_static_energy_ordering(self, schedule):
        """For any schedule: PD <= nap baseline; DS <= nap baseline; and
        PD never drops below the all-power-down floor."""
        spec = small_spec()
        nap = NapMemorySystem(spec, spec.installed_bytes)
        pd = PowerDownMemorySystem(spec)
        ds = DisableMemorySystem(spec, timeout_s=40.0)
        now = 0.0
        for gap, page, is_write in schedule:
            now += gap
            for system in (nap, pd, ds):
                system.access_rw(now, page, is_write)
        end = now + 100.0
        for system in (nap, pd, ds):
            system.finalize(end)

        assert pd.energy.static_j <= nap.energy.static_j + 1e-9
        assert ds.energy.static_j <= nap.energy.static_j + 1e-9
        floor = spec.bank_power("powerdown") * spec.num_banks * end
        assert pd.energy.static_j >= floor - 1e-9
        assert ds.energy.static_j >= 0.0

    @given(schedule=events)
    @settings(max_examples=40, deadline=None)
    def test_dirty_accounting_conserves(self, schedule):
        """Every written page is either still dirty, pending flush, or was
        flushed -- never lost, never duplicated into both states."""
        spec = small_spec()
        system = NapMemorySystem(spec, 32 * KB)  # 8 pages
        written = set()
        flushed = []
        now = 0.0
        for gap, page, is_write in schedule:
            now += gap
            system.access_rw(now, page, is_write)
            if is_write:
                written.add(page)
            flushed.extend(system.take_pending_flushes())
        flushed.extend(system.flush_all())
        # Each written page appears at least once in the flush stream.
        assert written <= set(flushed)
        assert system.dirty_pages == 0
        assert system.take_pending_flushes() == []
