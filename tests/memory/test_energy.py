"""Memory energy accumulator."""

from __future__ import annotations

import pytest

from repro.memory.energy import MemoryEnergy


class TestAccumulation:
    def test_buckets(self):
        energy = MemoryEnergy()
        energy.add_static(2.0, 10.0)
        energy.add_access(0.5)
        energy.add_transition(0.25)
        assert energy.static_j == pytest.approx(20.0)
        assert energy.dynamic_j == pytest.approx(0.5)
        assert energy.transition_j == pytest.approx(0.25)
        assert energy.total_j == pytest.approx(20.75)
        assert energy.accesses == 1
        assert energy.transitions == 1

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            MemoryEnergy().add_static(1.0, -1.0)


class TestSnapshots:
    def test_snapshot_is_independent(self):
        energy = MemoryEnergy()
        energy.add_static(1.0, 5.0)
        snap = energy.snapshot()
        energy.add_static(1.0, 5.0)
        assert snap.static_j == pytest.approx(5.0)
        assert energy.static_j == pytest.approx(10.0)

    def test_minus_gives_window_delta(self):
        energy = MemoryEnergy()
        energy.add_static(1.0, 5.0)
        energy.add_access(0.1)
        snap = energy.snapshot()
        energy.add_static(1.0, 3.0)
        energy.add_access(0.1)
        energy.add_access(0.1)
        delta = energy.minus(snap)
        assert delta.static_j == pytest.approx(3.0)
        assert delta.dynamic_j == pytest.approx(0.2)
        assert delta.accesses == 2
