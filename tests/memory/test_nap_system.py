"""NapMemorySystem: the always-nap model behind FM and the joint method."""

from __future__ import annotations

import pytest

from repro.config.memory_spec import MemorySpec
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem
from repro.units import KB, MB


@pytest.fixture()
def spec():
    # 4 pages per bank, 8 banks, page 4 kB.
    return MemorySpec(
        installed_bytes=128 * KB,
        bank_bytes=16 * KB,
        chip_bytes=16 * KB,
        page_bytes=4 * KB,
    )


class TestEnergy:
    def test_static_energy_proportional_to_enabled_banks(self, spec):
        half = NapMemorySystem(spec, 64 * KB)  # 4 banks
        full = NapMemorySystem(spec, 128 * KB)  # 8 banks
        half.finalize(100.0)
        full.finalize(100.0)
        assert full.energy.static_j == pytest.approx(2 * half.energy.static_j)
        expected = spec.mode_power_watts["nap"] * 8 * 100.0
        assert full.energy.static_j == pytest.approx(expected)

    def test_dynamic_energy_per_access(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        system.access(1.0, 5)
        system.access(2.0, 5)
        system.finalize(2.0)
        assert system.energy.dynamic_j == pytest.approx(
            2 * spec.dynamic_energy_per_access
        )
        assert system.energy.accesses == 2

    def test_resize_accrues_before_changing_power(self, spec):
        system = NapMemorySystem(spec, 128 * KB)
        system.resize(50.0, 64 * KB)  # 8 banks for 50 s
        system.finalize(100.0)  # 4 banks for 50 s
        nap = spec.mode_power_watts["nap"]
        assert system.energy.static_j == pytest.approx(nap * (8 * 50 + 4 * 50))

    def test_checkpoint_idempotent(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        system.checkpoint(10.0)
        first = system.energy.static_j
        system.checkpoint(10.0)
        assert system.energy.static_j == first


class TestCacheBehaviour:
    def test_hit_miss(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        assert system.access(0.0, 1) is False
        assert system.access(1.0, 1) is True

    def test_resize_evicts_lru(self, spec):
        system = NapMemorySystem(spec, 128 * KB)
        for i, page in enumerate(range(8)):
            system.access(float(i), page)
        evicted = system.resize(10.0, 16 * KB)  # down to 4 pages
        assert evicted == [0, 1, 2, 3]
        assert system.access(11.0, 7) is True
        assert system.access(12.0, 0) is False

    def test_capacity_properties(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        assert system.capacity_bytes == 64 * KB
        assert system.capacity_pages == 16
        assert system.enabled_banks == 4
        assert system.resizable is True


class TestValidation:
    def test_rejects_misaligned_capacity(self, spec):
        with pytest.raises(SimulationError):
            NapMemorySystem(spec, 10 * KB)

    def test_rejects_oversized_capacity(self, spec):
        with pytest.raises(SimulationError):
            NapMemorySystem(spec, 256 * KB)

    def test_rejects_time_regression(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        system.access(5.0, 1)
        with pytest.raises(SimulationError):
            system.access(4.0, 2)

    def test_resize_validation(self, spec):
        system = NapMemorySystem(spec, 64 * KB)
        with pytest.raises(SimulationError):
            system.resize(1.0, 10 * KB)
        with pytest.raises(SimulationError):
            system.resize(1.0, 256 * KB)


class TestPrefill:
    def test_prefill_fills_and_orders(self, spec):
        system = NapMemorySystem(spec, 16 * KB)  # 4 pages
        placed = system.prefill([1, 2, 3, 4])
        assert placed == 4
        assert system.access(0.0, 4) is True  # hottest resident
        # 1 was the coldest prefilled page: first to be evicted.
        system.access(1.0, 99)
        assert system.cache.peek(4)

    def test_prefill_keeps_hottest_tail(self, spec):
        system = NapMemorySystem(spec, 16 * KB)  # 4 pages
        placed = system.prefill(list(range(10)))  # 0..9, hottest = 9
        assert placed == 4
        for page in (6, 7, 8, 9):
            assert system.cache.peek(page)
        assert not system.cache.peek(0)

    def test_prefill_charges_no_energy(self, spec):
        system = NapMemorySystem(spec, 16 * KB)
        system.prefill([1, 2])
        assert system.energy.total_j == 0.0
