"""Extended LRU list (resident + replaced pages)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.counters import COLD_MISS
from repro.cache.ghost import ExtendedLRUList
from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import SimulationError


class TestBasics:
    def test_positions_are_stack_depths(self):
        lru = ExtendedLRUList(total_slots=4, resident_pages=2)
        assert lru.access(1) == COLD_MISS
        assert lru.access(2) == COLD_MISS
        assert lru.access(1) == 1
        assert lru.access(1) == 0

    def test_residency_boundary(self):
        lru = ExtendedLRUList(total_slots=4, resident_pages=2)
        for page in (1, 2, 3):
            lru.access(page)
        # Order: 3, 2, 1 -- only the top two are "in memory".
        assert lru.is_resident(3)
        assert lru.is_resident(2)
        assert not lru.is_resident(1)  # ghost entry
        assert not lru.is_resident(99)

    def test_ghosts_fall_off_the_end(self):
        lru = ExtendedLRUList(total_slots=2, resident_pages=1)
        lru.access(1)
        lru.access(2)
        lru.access(3)  # 1 falls off entirely
        assert lru.access(1) == COLD_MISS

    def test_resize_resident_does_not_touch_list(self):
        lru = ExtendedLRUList(total_slots=4, resident_pages=2)
        for page in (1, 2, 3, 4):
            lru.access(page)
        before = lru.contents()
        lru.resize_resident(3)
        assert lru.contents() == before
        assert lru.is_resident(2)

    def test_misses_if_resident(self):
        lru = ExtendedLRUList(total_slots=4, resident_pages=2)
        for page in (1, 2, 1, 2, 3, 1):
            lru.access(page)
        # Counters tally accesses by position; shrinking memory turns
        # positions >= size into disk accesses.
        assert lru.misses_if_resident(0) == sum(lru.counters)
        assert lru.misses_if_resident(4) == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            ExtendedLRUList(total_slots=0, resident_pages=0)
        with pytest.raises(SimulationError):
            ExtendedLRUList(total_slots=2, resident_pages=3)
        lru = ExtendedLRUList(total_slots=2, resident_pages=1)
        with pytest.raises(SimulationError):
            lru.resize_resident(5)
        with pytest.raises(SimulationError):
            lru.misses_if_resident(5)


class TestEquivalenceWithTracker:
    """The readable ghost list and the fast tracker must agree while no
    page has fallen off the bounded list."""

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=9), max_size=120)
    )
    @settings(max_examples=80, deadline=None)
    def test_positions_match_stack_distances(self, accesses):
        # 10 distinct pages at most, 16 slots: nothing ever falls off.
        lru = ExtendedLRUList(total_slots=16, resident_pages=8)
        tracker = StackDistanceTracker()
        for page in accesses:
            assert lru.access(page) == tracker.access(page)
