"""Depth counters -> miss counts at any memory size."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.counters import COLD_MISS, DepthCounters
from repro.errors import SimulationError


class TestRecording:
    def test_totals(self):
        counters = DepthCounters()
        counters.record_many([COLD_MISS, 0, 0, 3])
        assert counters.total_accesses == 4
        assert counters.cold_misses == 1
        assert counters.hits_at(0) == 2
        assert counters.hits_at(3) == 1
        assert counters.max_depth == 3

    def test_rejects_invalid_depth(self):
        with pytest.raises(SimulationError):
            DepthCounters().record(-2)

    def test_reset(self):
        counters = DepthCounters()
        counters.record(2)
        counters.reset()
        assert counters.total_accesses == 0
        assert counters.max_depth == -1


class TestMissCounts:
    def test_misses_at_size(self):
        counters = DepthCounters()
        counters.record_many([COLD_MISS, 0, 1, 1, 5])
        # capacity 0: everything misses
        assert counters.misses_at_size(0) == 5
        # capacity 1: depth 0 hits
        assert counters.misses_at_size(1) == 4
        # capacity 2: depths 0,1 hit
        assert counters.misses_at_size(2) == 2
        # capacity 6: only the cold miss remains
        assert counters.misses_at_size(6) == 1

    def test_vectorised_matches_scalar(self):
        counters = DepthCounters()
        counters.record_many([COLD_MISS, 0, 2, 2, 7, 9, COLD_MISS])
        sizes = list(range(0, 12))
        assert counters.misses_at_sizes(sizes) == [
            counters.misses_at_size(s) for s in sizes
        ]

    def test_vectorised_empty_input(self):
        assert DepthCounters().misses_at_sizes([]) == []

    def test_vectorised_no_reuse(self):
        counters = DepthCounters()
        counters.record_many([COLD_MISS] * 3)
        assert counters.misses_at_sizes([0, 5]) == [3, 3]

    def test_rejects_negative_capacity(self):
        with pytest.raises(SimulationError):
            DepthCounters().misses_at_size(-1)
        with pytest.raises(SimulationError):
            DepthCounters().misses_at_sizes([1, -1])

    def test_miss_ratio_curve_shape(self):
        counters = DepthCounters()
        counters.record_many([COLD_MISS, 0, 1, 3, 3])
        curve = counters.miss_ratio_curve(5)
        assert curve.tolist() == [5, 4, 3, 3, 1, 1]

    @given(
        depths=st.lists(
            st.integers(min_value=-1, max_value=40), min_size=1, max_size=200
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_nonincreasing_property(self, depths):
        counters = DepthCounters()
        counters.record_many(depths)
        curve = counters.miss_ratio_curve(45)
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[0] == counters.total_accesses
        assert curve[-1] == counters.cold_misses
