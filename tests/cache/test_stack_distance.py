"""Streaming stack distances: correctness against a brute-force LRU stack."""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stack_distance import COLD, StackDistanceTracker
from repro.errors import SimulationError


def brute_force_distances(accesses: List[int]) -> List[int]:
    """Reference implementation with an explicit LRU stack."""
    stack: List[int] = []  # MRU first
    out = []
    for page in accesses:
        if page in stack:
            depth = stack.index(page)
            out.append(depth)
            stack.remove(page)
        else:
            out.append(COLD)
        stack.insert(0, page)
    return out


class TestBasics:
    def test_docstring_example(self):
        tracker = StackDistanceTracker()
        got = [tracker.access(p) for p in (1, 2, 1, 2, 3, 1)]
        assert got == [-1, -1, 1, 1, -1, 2]

    def test_repeated_access_is_distance_zero(self):
        tracker = StackDistanceTracker()
        tracker.access(7)
        assert tracker.access(7) == 0
        assert tracker.access(7) == 0

    def test_cold_for_every_new_page(self):
        tracker = StackDistanceTracker()
        assert [tracker.access(p) for p in range(5)] == [COLD] * 5
        assert tracker.distinct_pages == 5

    def test_forget_makes_page_cold_again(self):
        tracker = StackDistanceTracker()
        tracker.access(1)
        tracker.forget(1)
        assert tracker.access(1) == COLD

    def test_forget_unknown_page_is_noop(self):
        tracker = StackDistanceTracker()
        tracker.forget(42)
        assert tracker.distinct_pages == 0

    def test_rejects_tiny_capacity(self):
        with pytest.raises(SimulationError):
            StackDistanceTracker(initial_capacity=2)


class TestAgainstBruteForce:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=25), max_size=300)
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, accesses):
        tracker = StackDistanceTracker()
        got = [tracker.access(p) for p in accesses]
        assert got == brute_force_distances(accesses)

    def test_compaction_preserves_distances(self):
        # A tiny capacity forces many compactions.
        tracker = StackDistanceTracker(initial_capacity=8)
        accesses = [i % 5 for i in range(200)] + list(range(100, 130)) * 3
        got = [tracker.access(p) for p in accesses]
        assert got == brute_force_distances(accesses)

    def test_compaction_grows_when_needed(self):
        tracker = StackDistanceTracker(initial_capacity=8)
        accesses = list(range(64))  # 64 distinct pages > initial capacity
        got = [tracker.access(p) for p in accesses]
        assert got == [COLD] * 64
        # All pages still tracked: re-scanning them in the same order means
        # each one has exactly 63 distinct pages above it in the stack.
        assert [tracker.access(p) for p in range(64)] == [63] * 64


class TestLRUConsistency:
    """distance < m  <=>  hit in an m-page LRU cache."""

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=15), max_size=150),
        capacity=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_distance_predicts_lru_hit(self, accesses, capacity):
        from repro.cache.lru import LRUCache

        tracker = StackDistanceTracker()
        cache = LRUCache(capacity)
        for page in accesses:
            depth = tracker.access(page)
            hit = cache.access(page)
            assert hit == (depth != COLD and depth < capacity)
