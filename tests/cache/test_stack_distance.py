"""Streaming stack distances: correctness against a brute-force LRU stack."""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stack_distance import COLD, StackDistanceTracker
from repro.errors import SimulationError


def brute_force_distances(accesses: List[int]) -> List[int]:
    """Reference implementation with an explicit LRU stack."""
    stack: List[int] = []  # MRU first
    out = []
    for page in accesses:
        if page in stack:
            depth = stack.index(page)
            out.append(depth)
            stack.remove(page)
        else:
            out.append(COLD)
        stack.insert(0, page)
    return out


class TestBasics:
    def test_docstring_example(self):
        tracker = StackDistanceTracker()
        got = [tracker.access(p) for p in (1, 2, 1, 2, 3, 1)]
        assert got == [-1, -1, 1, 1, -1, 2]

    def test_repeated_access_is_distance_zero(self):
        tracker = StackDistanceTracker()
        tracker.access(7)
        assert tracker.access(7) == 0
        assert tracker.access(7) == 0

    def test_cold_for_every_new_page(self):
        tracker = StackDistanceTracker()
        assert [tracker.access(p) for p in range(5)] == [COLD] * 5
        assert tracker.distinct_pages == 5

    def test_forget_makes_page_cold_again(self):
        tracker = StackDistanceTracker()
        tracker.access(1)
        tracker.forget(1)
        assert tracker.access(1) == COLD

    def test_forget_unknown_page_is_noop(self):
        tracker = StackDistanceTracker()
        tracker.forget(42)
        assert tracker.distinct_pages == 0

    def test_rejects_tiny_capacity(self):
        with pytest.raises(SimulationError):
            StackDistanceTracker(initial_capacity=2)


class TestAgainstBruteForce:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=25), max_size=300)
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, accesses):
        tracker = StackDistanceTracker()
        got = [tracker.access(p) for p in accesses]
        assert got == brute_force_distances(accesses)

    def test_compaction_preserves_distances(self):
        # A tiny capacity forces many compactions.
        tracker = StackDistanceTracker(initial_capacity=8)
        accesses = [i % 5 for i in range(200)] + list(range(100, 130)) * 3
        got = [tracker.access(p) for p in accesses]
        assert got == brute_force_distances(accesses)

    def test_compaction_grows_when_needed(self):
        tracker = StackDistanceTracker(initial_capacity=8)
        accesses = list(range(64))  # 64 distinct pages > initial capacity
        got = [tracker.access(p) for p in accesses]
        assert got == [COLD] * 64
        # All pages still tracked: re-scanning them in the same order means
        # each one has exactly 63 distinct pages above it in the stack.
        assert [tracker.access(p) for p in range(64)] == [63] * 64


def reference_with_forget(ops) -> List[int]:
    """Brute-force stack with interleaved forgets; distances for accesses."""
    stack: List[int] = []  # MRU first
    out = []
    for op, page in ops:
        if op == "forget":
            if page in stack:
                stack.remove(page)
            continue
        if page in stack:
            out.append(stack.index(page))
            stack.remove(page)
        else:
            out.append(COLD)
        stack.insert(0, page)
    return out


class TestCompaction:
    """The index-space renumbering (and its live-count bookkeeping)."""

    def test_growth_path_expands_capacity(self):
        tracker = StackDistanceTracker(initial_capacity=4)
        for page in range(4):
            tracker.access(page)
        assert tracker._capacity == 4
        # All four indices are live, so compaction must grow, not just
        # renumber: needed = 2 * live > capacity.
        tracker.access(4)
        assert tracker._capacity == 8
        assert tracker.distinct_pages == 5
        assert [tracker.access(p) for p in range(5)] == [4] * 5

    def test_distances_survive_repeated_compaction(self):
        tracker = StackDistanceTracker(initial_capacity=8)
        accesses = ([0, 1, 2] * 40) + list(range(10, 20)) + ([1, 11] * 20)
        got = [tracker.access(p) for p in accesses]
        assert got == brute_force_distances(accesses)

    def test_live_count_matches_tree_total_throughout(self):
        tracker = StackDistanceTracker(initial_capacity=8)
        for i in range(100):
            tracker.access(i % 7)
            assert tracker._live == tracker._tree.total

    def test_forget_then_compact(self):
        # Forgotten pages leave holes in the index space; compaction must
        # drop them and later distances must not count them.
        ops = []
        for i in range(30):
            ops.append(("access", i % 6))
            if i % 5 == 4:
                ops.append(("forget", i % 6))
        tracker = StackDistanceTracker(initial_capacity=8)
        got = []
        for op, page in ops:
            if op == "forget":
                tracker.forget(page)
            else:
                got.append(tracker.access(page))
            assert tracker._live == tracker._tree.total
        assert got == reference_with_forget(ops)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["access", "forget"]),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_forget_interaction_matches_reference(self, ops):
        tracker = StackDistanceTracker(initial_capacity=8)
        got = []
        for op, page in ops:
            if op == "forget":
                tracker.forget(page)
            else:
                got.append(tracker.access(page))
        assert got == reference_with_forget(ops)
        assert tracker._live == tracker._tree.total


class TestAccessArray:
    def test_matches_per_call_access(self):
        import numpy as np

        rng = np.random.default_rng(0)
        pages = rng.integers(0, 25, 500)
        batch = StackDistanceTracker(initial_capacity=8).access_array(pages)
        loop = StackDistanceTracker(initial_capacity=8)
        assert batch.tolist() == [loop.access(int(p)) for p in pages]

    def test_empty_input(self):
        out = StackDistanceTracker().access_array([])
        assert out.size == 0

    def test_empty_batch_between_batches_is_a_no_op(self):
        """The streaming service feeds whatever batches arrive, including
        empty ones -- they must not perturb the tracker state."""
        import numpy as np

        rng = np.random.default_rng(1)
        pages = rng.integers(0, 25, 200)
        interleaved = StackDistanceTracker()
        parts = [
            interleaved.access_array(pages[:80]),
            interleaved.access_array(pages[:0]),
            interleaved.access_array(pages[80:]),
        ]
        straight = StackDistanceTracker().access_array(pages)
        assert np.concatenate(parts).tolist() == straight.tolist()


class TestLRUConsistency:
    """distance < m  <=>  hit in an m-page LRU cache."""

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=15), max_size=150),
        capacity=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80, deadline=None)
    def test_distance_predicts_lru_hit(self, accesses, capacity):
        from repro.cache.lru import LRUCache

        tracker = StackDistanceTracker()
        cache = LRUCache(capacity)
        for page in accesses:
            depth = tracker.access(page)
            hit = cache.access(page)
            assert hit == (depth != COLD and depth < capacity)
