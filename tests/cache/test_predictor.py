"""Resize predictor: disk IO and idle intervals at candidate sizes.

The key property (the paper's central trick): the predictor's per-size
miss counts and idle intervals must equal what an actual LRU cache of
that size would produce on the same access stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.errors import SimulationError


def build_predictor(times, pages):
    tracker = StackDistanceTracker()
    predictor = ResizePredictor()
    for t, p in zip(times, pages):
        predictor.record(t, tracker.access(p))
    return predictor


class TestAgainstRealCache:
    @given(
        pages=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=150),
        capacity=st.integers(min_value=0, max_value=14),
    )
    @settings(max_examples=80, deadline=None)
    def test_miss_count_matches_real_lru(self, pages, capacity):
        times = np.arange(len(pages), dtype=float)
        predictor = build_predictor(times, pages)
        [prediction] = predictor.predict(
            [capacity], window_s=0.0, period_start=0.0, period_end=len(pages)
        )
        cache = LRUCache(capacity)
        real_misses = sum(0 if cache.access(p) else 1 for p in pages)
        assert prediction.num_disk_accesses == real_misses
        assert prediction.num_cache_accesses == len(pages)

    @given(
        pages=st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=100)
    )
    @settings(max_examples=40, deadline=None)
    def test_misses_decrease_with_memory(self, pages):
        times = np.arange(len(pages), dtype=float)
        predictor = build_predictor(times, pages)
        sizes = [0, 1, 2, 4, 8, 16]
        predictions = predictor.predict(
            sizes, window_s=0.0, period_start=0.0, period_end=len(pages)
        )
        misses = [p.num_disk_accesses for p in predictions]
        assert all(a >= b for a, b in zip(misses, misses[1:]))


class TestIdleIntervals:
    def test_interval_merging_with_memory_growth(self):
        # Two pages, reused: with memory 0 everything is a disk access;
        # with memory 2 only the cold misses remain and intervals merge.
        times = [0.0, 10.0, 20.0, 30.0]
        pages = [1, 2, 1, 2]
        predictor = build_predictor(times, pages)
        small, large = predictor.predict(
            [0, 2], window_s=0.0, period_start=0.0, period_end=40.0
        )
        assert small.num_disk_accesses == 4
        assert small.idle.lengths.tolist() == [10.0, 10.0, 10.0, 10.0]
        assert large.num_disk_accesses == 2
        assert large.idle.lengths.tolist() == [10.0, 30.0]

    def test_window_filtering_applied(self):
        times = [0.0, 0.05, 10.0]
        pages = [1, 2, 3]
        predictor = build_predictor(times, pages)
        [prediction] = predictor.predict(
            [0], window_s=0.1, period_start=0.0, period_end=10.0
        )
        assert prediction.idle.lengths.tolist() == [pytest.approx(9.95)]

    def test_empty_period(self):
        predictor = ResizePredictor()
        [prediction] = predictor.predict(
            [4], window_s=0.1, period_start=0.0, period_end=600.0
        )
        assert prediction.num_disk_accesses == 0
        assert prediction.idle.lengths.tolist() == [600.0]


class TestBookkeeping:
    def test_reset(self):
        predictor = build_predictor([0.0, 1.0], [1, 1])
        assert len(predictor) == 2
        predictor.reset()
        assert len(predictor) == 0

    def test_rejects_time_regression(self):
        predictor = ResizePredictor()
        predictor.record(5.0, -1)
        with pytest.raises(SimulationError):
            predictor.record(4.0, -1)

    def test_rejects_invalid_depth(self):
        with pytest.raises(SimulationError):
            ResizePredictor().record(0.0, -2)

    def test_rejects_negative_capacity(self):
        predictor = build_predictor([0.0], [1])
        with pytest.raises(SimulationError):
            predictor.predict([-1], window_s=0.0, period_start=0.0, period_end=1.0)

    def test_rejects_inverted_period(self):
        predictor = ResizePredictor()
        with pytest.raises(SimulationError):
            predictor.predict([1], window_s=0.0, period_start=5.0, period_end=1.0)


class TestRecordArray:
    @given(
        pages=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=150),
        split=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_scalar_record(self, pages, split):
        times = np.arange(len(pages), dtype=float)
        tracker = StackDistanceTracker()
        depths = tracker.access_array(pages)

        scalar = ResizePredictor()
        for t, d in zip(times.tolist(), depths.tolist()):
            scalar.record(t, d)

        split = min(split, len(pages))
        batched = ResizePredictor()
        batched.record_array(times[:split], depths[:split])
        batched.record_array(times[split:], depths[split:])

        assert len(batched) == len(scalar)
        sizes = [0, 1, 3, 8, 16]
        kwargs = dict(window_s=0.0, period_start=0.0, period_end=float(len(pages)))
        for fast, slow in zip(
            batched.predict(sizes, **kwargs), scalar.predict(sizes, **kwargs)
        ):
            assert fast.num_disk_accesses == slow.num_disk_accesses
            assert fast.idle.lengths.tolist() == slow.idle.lengths.tolist()

    def test_buffer_growth_preserves_samples(self):
        import repro.cache.predictor as predictor_mod

        n = predictor_mod._INITIAL_BUFFER * 2 + 17
        predictor = ResizePredictor()
        predictor.record_array(np.arange(n, dtype=float), np.zeros(n, dtype=np.int64))
        predictor.record(float(n), 0)
        assert len(predictor) == n + 1
        [p] = predictor.predict(
            [0], window_s=0.0, period_start=0.0, period_end=float(n + 1)
        )
        assert p.num_disk_accesses == n + 1

    def test_empty_batch_is_a_no_op(self):
        predictor = ResizePredictor()
        predictor.record_array(np.empty(0), np.empty(0, dtype=np.int64))
        assert len(predictor) == 0

    def test_empty_batch_between_batches_is_a_no_op(self):
        """Streaming feeds may be empty; state must carry across them."""
        predictor = ResizePredictor()
        predictor.record_array(np.array([0.0, 1.0]), np.array([0, 3]))
        predictor.record_array(np.empty(0), np.empty(0, dtype=np.int64))
        predictor.record_array(np.array([2.0]), np.array([1]))
        assert len(predictor) == 3
        # An empty batch must not reset the monotonicity watermark.
        with pytest.raises(SimulationError):
            predictor.record_array(np.array([1.5]), np.array([0]))

    def test_rejects_time_regression_across_batches(self):
        predictor = ResizePredictor()
        predictor.record(5.0, -1)
        with pytest.raises(SimulationError, match="time order"):
            predictor.record_array(np.array([4.0]), np.array([0]))

    def test_rejects_time_regression_within_batch(self):
        predictor = ResizePredictor()
        with pytest.raises(SimulationError, match="time order"):
            predictor.record_array(np.array([1.0, 0.5]), np.array([0, 0]))

    def test_rejects_invalid_depth(self):
        predictor = ResizePredictor()
        with pytest.raises(SimulationError, match="invalid depth -2"):
            predictor.record_array(np.array([0.0, 1.0]), np.array([0, -2]))

    def test_rejects_shape_mismatch(self):
        predictor = ResizePredictor()
        with pytest.raises(SimulationError):
            predictor.record_array(np.array([0.0, 1.0]), np.array([0]))

    def test_reset_after_batches(self):
        predictor = ResizePredictor()
        predictor.record_array(np.array([0.0, 1.0]), np.array([-1, 0]))
        predictor.reset()
        assert len(predictor) == 0
        predictor.record(0.5, -1)  # time order restarts after reset
        assert len(predictor) == 1


class TestSharedIdleExtraction:
    def test_plateau_candidates_share_idle_objects(self):
        # Candidates past the working set see identical disk streams;
        # the one-pass predict computes their intervals once.
        times = [0.0, 10.0, 20.0, 30.0]
        pages = [1, 2, 1, 2]
        predictor = build_predictor(times, pages)
        a, b, c = predictor.predict(
            [2, 8, 16], window_s=0.0, period_start=0.0, period_end=40.0
        )
        assert a.num_disk_accesses == b.num_disk_accesses == c.num_disk_accesses == 2
        assert a.idle is b.idle and b.idle is c.idle
        assert a.idle.lengths.tolist() == [10.0, 30.0]
