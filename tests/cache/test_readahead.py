"""Sequential-miss clustering."""

from __future__ import annotations

import pytest

from repro.cache.readahead import DiskRequest, ReadaheadClusterer
from repro.errors import SimulationError


class TestClustering:
    def test_sequential_run_merges(self):
        clusterer = ReadaheadClusterer(merge_window_s=1.0)
        requests = clusterer.cluster([0.0, 0.1, 0.2], [5, 6, 7])
        assert len(requests) == 1
        assert requests[0].start_page == 5
        assert requests[0].num_pages == 3

    def test_non_sequential_breaks_run(self):
        clusterer = ReadaheadClusterer(merge_window_s=1.0)
        requests = clusterer.cluster([0.0, 0.1, 0.2], [5, 6, 9])
        assert [r.num_pages for r in requests] == [2, 1]

    def test_backward_page_breaks_run(self):
        clusterer = ReadaheadClusterer(merge_window_s=1.0)
        requests = clusterer.cluster([0.0, 0.1], [5, 4])
        assert [r.start_page for r in requests] == [5, 4]

    def test_time_window_breaks_run(self):
        clusterer = ReadaheadClusterer(merge_window_s=0.5)
        requests = clusterer.cluster([0.0, 2.0], [5, 6])
        assert len(requests) == 2

    def test_max_pages_caps_request(self):
        clusterer = ReadaheadClusterer(merge_window_s=10.0, max_pages=2)
        requests = clusterer.cluster(
            [0.0, 0.1, 0.2, 0.3], [1, 2, 3, 4]
        )
        assert [r.num_pages for r in requests] == [2, 2]

    def test_request_timestamp_is_first_miss(self):
        clusterer = ReadaheadClusterer(merge_window_s=1.0)
        requests = clusterer.cluster([3.0, 3.5], [1, 2])
        assert requests[0].time_s == 3.0

    def test_size_bytes(self):
        request = DiskRequest(time_s=0.0, start_page=0, num_pages=3)
        assert request.size_bytes(4096) == 12288

    def test_flush_returns_pending(self):
        clusterer = ReadaheadClusterer()
        assert clusterer.flush() is None
        clusterer.add(0.0, 1)
        pending = clusterer.flush()
        assert pending is not None and pending.num_pages == 1
        assert clusterer.flush() is None


class TestValidation:
    def test_rejects_time_regression(self):
        clusterer = ReadaheadClusterer()
        clusterer.add(1.0, 1)
        with pytest.raises(SimulationError):
            clusterer.add(0.5, 2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            ReadaheadClusterer(merge_window_s=-1.0)
        with pytest.raises(SimulationError):
            ReadaheadClusterer(max_pages=0)

    def test_rejects_misaligned_batch(self):
        with pytest.raises(SimulationError):
            ReadaheadClusterer().cluster([0.0], [1, 2])

    def test_pages_conserved(self):
        clusterer = ReadaheadClusterer(merge_window_s=0.2, max_pages=4)
        times = [i * 0.1 for i in range(20)]
        pages = [1, 2, 3, 7, 8, 20, 21, 22, 23, 24, 30, 5, 6, 7, 8, 9, 50, 51, 60, 61]
        requests = clusterer.cluster(times, pages)
        assert sum(r.num_pages for r in requests) == len(pages)
