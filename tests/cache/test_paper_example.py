"""The worked example of paper Section IV-B / Figs. 3-4, verbatim.

Ten accesses (1, 2, 3, 5, 2, 1, 4, 6, 5, 2) against an 8-slot extended
LRU list whose top four slots are resident:

* counters end as (0, 0, 1, 1, 2, 0, 0, 0) (1-indexed in the paper);
* 8 of the 10 accesses are disk accesses at 4 resident pages;
* at 3 pages the count becomes 9; at 5 pages it drops to 6 ("two disk
  accesses can be avoided");
* beyond 6 pages nothing changes.
"""

from __future__ import annotations

from repro.cache.counters import COLD_MISS, DepthCounters
from repro.cache.ghost import ExtendedLRUList
from repro.cache.stack_distance import StackDistanceTracker

ACCESSES = (1, 2, 3, 5, 2, 1, 4, 6, 5, 2)


def test_counters_match_figure_3():
    lru = ExtendedLRUList(total_slots=8, resident_pages=4)
    for page in ACCESSES:
        lru.access(page)
    # Paper: "the values of the counters are (0, 0, 1, 1, 2, 0, 0, 0)".
    assert lru.counters == [0, 0, 1, 1, 2, 0, 0, 0]


def test_list_order_after_first_four_accesses():
    lru = ExtendedLRUList(total_slots=8, resident_pages=4)
    for page in (1, 2, 3, 5):
        lru.access(page)
    # Paper: "the LRU list is (5, 3, 2, 1)".
    assert lru.contents() == [5, 3, 2, 1]


def test_disk_access_counts_per_memory_size():
    counters = DepthCounters()
    tracker = StackDistanceTracker()
    for page in ACCESSES:
        counters.record(tracker.access(page))

    # Six cold (first) accesses can never be avoided: 1, 2, 3, 5, 4, 6.
    assert counters.cold_misses == 6

    # Paper: 8 disk accesses at 4 pages (6 cold + pages 5 and 2 reloaded).
    assert counters.misses_at_size(4) == 8
    # Paper: shrinking to 3 pages adds one miss -> 9.
    assert counters.misses_at_size(3) == 9
    # Paper: growing to 5 pages avoids the two reloads -> 6.
    assert counters.misses_at_size(5) == 6
    # Paper: "further increasing the memory size has the same disk IO".
    assert counters.misses_at_size(6) == 6
    assert counters.misses_at_size(8) == 6
    assert counters.misses_at_size(100) == 6


def test_ghost_list_and_tracker_agree_on_the_example():
    lru = ExtendedLRUList(total_slots=8, resident_pages=4)
    tracker = StackDistanceTracker()
    for page in ACCESSES:
        position = lru.access(page)
        depth = tracker.access(page)
        assert position == depth


def test_fig4_idle_interval_reconstruction():
    """Fig. 4: which accesses hit the disk at 4, 2 and 5 pages.

    With the example's depths, accesses 5 and 6 (pages 2, 1 at depths
    2, 3) are memory accesses at 4 pages but disk accesses at 2 pages,
    splitting the first idle interval; accesses 9 and 10 (pages 5, 2 at
    depth 4) become memory accesses at 5 pages, merging the second idle
    interval into the tail.
    """
    tracker = StackDistanceTracker()
    depths = [tracker.access(page) for page in ACCESSES]

    def is_disk(depth: int, memory_pages: int) -> bool:
        return depth == COLD_MISS or depth >= memory_pages

    at4 = [is_disk(d, 4) for d in depths]
    at2 = [is_disk(d, 2) for d in depths]
    at5 = [is_disk(d, 5) for d in depths]

    # 4 pages: accesses 5 and 6 (0-indexed 4, 5) hit memory.
    assert at4 == [True] * 4 + [False, False] + [True] * 4
    # 2 pages: they become disk accesses (I1 splits into I1', I1'').
    assert at2 == [True] * 10
    # 5 pages: the final reloads hit memory too (I2 merges onward).
    assert at5 == [True] * 4 + [False, False] + [True, True] + [False, False]
