"""Resident-page LRU cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.errors import SimulationError


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(2)
        assert cache.access(1) is False
        assert cache.access(1) is True

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_access_refreshes_recency(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)
        assert 2 not in cache
        assert 1 in cache

    def test_zero_capacity_never_caches(self):
        cache = LRUCache(0)
        assert cache.access(1) is False
        assert cache.access(1) is False
        assert len(cache) == 0

    def test_resident_pages_mru_first(self):
        cache = LRUCache(3)
        for page in (1, 2, 3):
            cache.access(page)
        assert cache.resident_pages() == [3, 2, 1]

    def test_lru_page(self):
        cache = LRUCache(3)
        assert cache.lru_page() is None
        for page in (1, 2, 3):
            cache.access(page)
        assert cache.lru_page() == 1

    def test_peek_does_not_touch(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.peek(1)
        cache.access(3)  # 1 must still be LRU despite the peek
        assert 1 not in cache

    def test_rejects_negative_capacity(self):
        with pytest.raises(SimulationError):
            LRUCache(-1)


class TestLoad:
    def test_load_returns_evicted(self):
        cache = LRUCache(1)
        assert cache.load(1) is None
        assert cache.load(2) == 1

    def test_load_rejects_resident(self):
        cache = LRUCache(2)
        cache.load(1)
        with pytest.raises(SimulationError):
            cache.load(1)

    def test_load_zero_capacity_noop(self):
        cache = LRUCache(0)
        assert cache.load(1) is None
        assert len(cache) == 0


class TestResizeInvalidate:
    def test_shrink_evicts_lru_first(self):
        cache = LRUCache(3)
        for page in (1, 2, 3):
            cache.access(page)
        evicted = cache.resize(1)
        assert evicted == [1, 2]
        assert cache.resident_pages() == [3]

    def test_grow_keeps_contents(self):
        cache = LRUCache(1)
        cache.access(1)
        assert cache.resize(3) == []
        assert 1 in cache

    def test_invalidate_counts_dropped(self):
        cache = LRUCache(3)
        for page in (1, 2, 3):
            cache.access(page)
        assert cache.invalidate([2, 99]) == 1
        assert 2 not in cache

    def test_clear(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.clear()
        assert len(cache) == 0

    def test_resize_rejects_negative(self):
        with pytest.raises(SimulationError):
            LRUCache(2).resize(-1)


class TestInclusionProperty:
    """Mattson: a smaller LRU cache's contents are a subset of a larger one's."""

    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=30), max_size=200),
        small=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_inclusion(self, accesses, small, extra):
        small_cache = LRUCache(small)
        big_cache = LRUCache(small + extra)
        for page in accesses:
            small_cache.access(page)
            big_cache.access(page)
        assert set(small_cache.resident_pages()) <= set(big_cache.resident_pages())

    @given(accesses=st.lists(st.integers(min_value=0, max_value=20), max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_size_never_exceeds_capacity(self, accesses):
        cache = LRUCache(5)
        for page in accesses:
            cache.access(page)
            assert len(cache) <= 5
