"""Miss-ratio curves, knees and working sets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.mrc import build_mrc, working_set_pages
from repro.errors import TraceError
from repro.traces.trace import Trace


def make_trace(pages, times=None, page_size=4096):
    pages = np.asarray(pages, dtype=np.int64)
    if times is None:
        times = np.arange(pages.size, dtype=float)
    return Trace(times=np.asarray(times, float), pages=pages, page_size=page_size)


class TestBuildMrc:
    def test_cyclic_pattern(self):
        # 0,1,2 repeated: thrash below 3 pages, only cold misses at >= 3.
        trace = make_trace([0, 1, 2] * 10)
        mrc = build_mrc(trace)
        assert mrc.ratio_at(0) == 1.0
        assert mrc.ratio_at(2) == 1.0  # LRU pathological case
        assert mrc.ratio_at(3) == pytest.approx(3 / 30)
        assert mrc.floor == pytest.approx(3 / 30)

    def test_matches_real_cache_everywhere(self):
        rng = np.random.default_rng(17)
        pages = rng.zipf(1.5, size=400) % 40
        trace = make_trace(pages)
        mrc = build_mrc(trace)
        for capacity in (0, 1, 3, 7, 15, 40):
            cache = LRUCache(capacity)
            misses = sum(0 if cache.access(int(p)) else 1 for p in pages)
            assert mrc.ratio_at(capacity) == pytest.approx(
                misses / pages.size
            ), capacity

    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=150
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_nonincreasing_property(self, pages):
        mrc = build_mrc(make_trace(pages))
        assert np.all(np.diff(mrc.ratios) <= 1e-12)
        assert mrc.ratios[-1] == pytest.approx(mrc.floor)

    def test_empty_rejected(self):
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            build_mrc(empty)


class TestKneeAndTargets:
    def test_knee_of_cyclic_pattern(self):
        trace = make_trace([0, 1, 2] * 10)
        mrc = build_mrc(trace)
        assert mrc.knee_pages(epsilon=0.05) == 3

    def test_bytes_for_ratio(self):
        trace = make_trace([0, 1, 2] * 10)
        mrc = build_mrc(trace)
        assert mrc.bytes_for_ratio(0.5) == 3 * 4096

    def test_unreachable_ratio_raises(self):
        trace = make_trace([0, 1, 2] * 10)
        mrc = build_mrc(trace)
        with pytest.raises(TraceError, match="floor"):
            mrc.bytes_for_ratio(0.01)

    def test_validation(self):
        mrc = build_mrc(make_trace([0, 1, 0, 1]))
        with pytest.raises(TraceError):
            mrc.ratio_at(-1)
        with pytest.raises(TraceError):
            mrc.knee_pages(epsilon=0.0)
        with pytest.raises(TraceError):
            mrc.bytes_for_ratio(1.5)


class TestWorkingSet:
    def test_constant_working_set(self):
        # 4 distinct pages touched every second.
        pages = [0, 1, 2, 3] * 25
        times = np.repeat(np.arange(25, dtype=float), 4)
        trace = make_trace(pages, times=times)
        assert working_set_pages(trace, window_s=1.0) == pytest.approx(4.0)

    def test_larger_window_sees_more(self):
        rng = np.random.default_rng(3)
        pages = rng.integers(0, 100, size=500)
        times = np.sort(rng.uniform(0, 100, size=500))
        trace = make_trace(pages, times=times)
        small = working_set_pages(trace, window_s=5.0)
        large = working_set_pages(trace, window_s=25.0)
        assert large > small

    def test_validation(self):
        trace = make_trace([0, 1])
        with pytest.raises(TraceError):
            working_set_pages(trace, window_s=0.0)
        empty = Trace(times=np.array([]), pages=np.array([], dtype=np.int64))
        with pytest.raises(TraceError):
            working_set_pages(empty, window_s=1.0)
