"""Trace profiles: stack-distance correctness, payloads, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import profile as profile_mod
from repro.cache.lru import LRUCache
from repro.cache.profile import (
    TraceProfile,
    build_profile,
    clear_memo,
    get_profile,
    kernels_enabled,
    profile_key,
    set_active_cache,
)
from repro.campaign.cache import ResultCache
from repro.sim.prefill import warm_start_pages
from repro.traces.trace import Trace


def make_trace(seed: int = 0, n: int = 400, distinct: int = 40) -> Trace:
    rng = np.random.default_rng(seed)
    return Trace(
        times=np.sort(rng.uniform(0.0, 100.0, n)),
        pages=rng.integers(0, distinct, n).astype(np.int64),
        page_size=4096,
    )


@pytest.fixture(autouse=True)
def _isolated_backend():
    previous = set_active_cache(None)
    clear_memo()
    yield
    set_active_cache(previous)
    clear_memo()


class TestHitMask:
    @pytest.mark.parametrize("capacity", [0, 1, 3, 8, 40])
    def test_predicts_prefilled_lru(self, capacity):
        """hit_mask(m) == the hits of an m-page LRU prefilled like the sim."""
        trace = make_trace(seed=1)
        profile = build_profile(trace, warm_start=True)
        cache = LRUCache(capacity)
        for page in warm_start_pages(trace):
            cache.load(page)  # distinct pages; the tail stays resident
        expected = np.array(
            [cache.access(int(p)) for p in trace.pages], dtype=bool
        )
        assert np.array_equal(profile.hit_mask(capacity), expected)

    @pytest.mark.parametrize("capacity", [1, 8])
    def test_predicts_cold_lru(self, capacity):
        trace = make_trace(seed=2)
        profile = build_profile(trace, warm_start=False)
        cache = LRUCache(capacity)
        expected = np.array(
            [cache.access(int(p)) for p in trace.pages], dtype=bool
        )
        assert np.array_equal(profile.hit_mask(capacity), expected)

    def test_length_truncates(self):
        trace = make_trace(seed=3)
        profile = build_profile(trace)
        assert profile.hit_mask(8, length=10).shape == (10,)


class TestVectorizedCounts:
    def test_hit_counts_match_hit_mask(self):
        """The searchsorted fast path == summing the boolean mask."""
        trace = make_trace(seed=21)
        profile = build_profile(trace, warm_start=True)
        capacities = np.array([0, 1, 2, 5, 17, 40, 1000], dtype=np.int64)
        counts = profile.hit_counts(capacities)
        expected = np.array(
            [int(profile.hit_mask(int(m)).sum()) for m in capacities],
            dtype=np.int64,
        )
        assert np.array_equal(counts, expected)
        misses = profile.miss_counts(capacities)
        assert np.array_equal(misses, len(profile) - expected)

    def test_cold_profile_counts(self):
        trace = make_trace(seed=22)
        profile = build_profile(trace, warm_start=False)
        capacities = np.array([3, 9, 30])
        expected = np.array(
            [int(profile.hit_mask(int(m)).sum()) for m in capacities]
        )
        assert np.array_equal(profile.hit_counts(capacities), expected)

    def test_sorted_depths_cached_and_frozen(self):
        profile = build_profile(make_trace(seed=23))
        ordered = profile.sorted_depths()
        assert profile.sorted_depths() is ordered
        assert not ordered.flags.writeable
        assert np.array_equal(ordered, np.sort(profile.depths))


class TestMemoCapacity:
    @pytest.mark.parametrize("value,expected", [
        ("", 8), ("32", 32), ("1", 1),
        ("0", 8), ("-4", 8), ("lots", 8), ("  16  ", 16),
    ])
    def test_env_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(profile_mod.PROFILE_MEMO_ENV, value)
        assert profile_mod.memo_capacity() == expected

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(profile_mod.PROFILE_MEMO_ENV, raising=False)
        assert profile_mod.memo_capacity() == profile_mod.DEFAULT_MEMO_CAPACITY

    def test_env_widens_the_memo(self, monkeypatch):
        """With the env raised, a round-robin wider than the default
        stays fully memoized (no rebuilds on the second pass)."""
        monkeypatch.setenv(profile_mod.PROFILE_MEMO_ENV, "16")
        traces = [make_trace(seed=100 + i, n=50) for i in range(12)]
        first = [get_profile(t) for t in traces]
        second = [get_profile(t) for t in traces]
        assert all(a is b for a, b in zip(first, second))

    def test_small_capacity_evicts_lru(self, monkeypatch):
        monkeypatch.setenv(profile_mod.PROFILE_MEMO_ENV, "2")
        traces = [make_trace(seed=200 + i, n=50) for i in range(3)]
        first = [get_profile(t) for t in traces]
        # Oldest entry fell out; the two newest are still memoized.
        assert get_profile(traces[0]) is not first[0]
        assert get_profile(traces[2]) is first[2]


class TestContentAddress:
    def test_key_separates_warm_and_cold(self):
        trace = make_trace(seed=4)
        assert profile_key(trace, True) != profile_key(trace, False)

    def test_key_separates_traces(self):
        assert profile_key(make_trace(seed=5), True) != profile_key(
            make_trace(seed=6), True
        )


class TestPayload:
    def test_round_trip(self):
        trace = make_trace(seed=7)
        profile = build_profile(trace)
        back = TraceProfile.from_payload(profile.to_payload(), profile.key)
        assert back is not None
        assert back.warm_start == profile.warm_start
        assert np.array_equal(back.depths, profile.depths)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("depths"),
            lambda p: p.update(depths="!!not base64!!"),
            lambda p: p.update(schema=999),
            lambda p: p.update(kind="something_else"),
            lambda p: p.update(n=5),
        ],
    )
    def test_rejects_corrupt_payloads(self, mutate):
        profile = build_profile(make_trace(seed=8))
        payload = profile.to_payload()
        mutate(payload)
        assert TraceProfile.from_payload(payload, profile.key) is None


class TestGetProfile:
    def test_memoized(self):
        trace = make_trace(seed=9)
        first = get_profile(trace)
        assert get_profile(trace) is first

    def test_persists_through_result_cache(self, tmp_path, monkeypatch):
        trace = make_trace(seed=10)
        set_active_cache(ResultCache(tmp_path))
        built = get_profile(trace)
        clear_memo()
        # A rebuild would call the tracker again; poison it to prove the
        # second lookup decodes the cached payload instead.
        monkeypatch.setattr(
            profile_mod,
            "build_profile",
            lambda *a, **k: pytest.fail("profile was rebuilt, not recalled"),
        )
        recalled = get_profile(trace)
        assert np.array_equal(recalled.depths, built.depths)
        assert recalled.key == built.key

    def test_corrupt_cache_entry_falls_back_to_build(self, tmp_path):
        trace = make_trace(seed=11)
        cache = ResultCache(tmp_path)
        cache.put(profile_key(trace, True), {"kind": "garbage"})
        set_active_cache(cache)
        profile = get_profile(trace)
        assert len(profile) == trace.num_accesses

    def test_explicit_none_skips_backend(self, tmp_path):
        trace = make_trace(seed=12)
        cache = ResultCache(tmp_path)
        set_active_cache(cache)
        get_profile(trace, cache=None)
        assert cache.get(profile_key(trace, True)) is None

    def test_set_active_cache_accepts_path_and_restores(self, tmp_path):
        previous = set_active_cache(tmp_path)
        assert previous is None
        installed = profile_mod.active_cache()
        assert isinstance(installed, ResultCache)
        assert installed.root == tmp_path
        assert set_active_cache(previous) is installed


class TestKillSwitch:
    @pytest.mark.parametrize("value,enabled", [
        ("", True), ("1", True), ("on", True),
        ("0", False), ("off", False), ("False", False), ("no", False),
    ])
    def test_env_parsing(self, monkeypatch, value, enabled):
        monkeypatch.setenv("REPRO_KERNELS", value)
        assert kernels_enabled() is enabled
