"""The campaign executor: fan-out, caching, resume, retry, telemetry.

The fake tasks live at module top level so worker processes can
unpickle them; the flaky/crashy ones coordinate through marker files
because worker state does not survive the round trip.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.executor import (
    SOURCE_CACHE,
    SOURCE_DEDUP,
    SOURCE_EXECUTED,
    SOURCE_JOURNAL,
    run_campaign,
)
from repro.campaign.hashing import task_key
from repro.campaign.journal import JOURNAL_NAME
from repro.errors import CampaignError


@dataclass(frozen=True)
class AddTask:
    """A trivial deterministic task."""

    a: int
    b: int

    kind = "add"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "a": self.a, "b": self.b}

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return f"add:{self.a}+{self.b}"

    def execute(self) -> Dict[str, Any]:
        return {"sum": self.a + self.b}


@dataclass(frozen=True)
class FlakyTask:
    """Raises until the marker file has recorded ``fail_times`` attempts."""

    marker: str
    fail_times: int

    kind = "flaky"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "marker": self.marker}

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return f"flaky:{Path(self.marker).name}"

    def execute(self) -> Dict[str, Any]:
        path = Path(self.marker)
        count = int(path.read_text()) if path.exists() else 0
        if count < self.fail_times:
            path.write_text(str(count + 1))
            raise RuntimeError(f"flaky failure #{count + 1}")
        return {"ok": True}


@dataclass(frozen=True)
class CrashTask:
    """Kills its worker process outright on the first attempt."""

    marker: str

    kind = "crash"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "marker": self.marker}

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return f"crash:{Path(self.marker).name}"

    def execute(self) -> Dict[str, Any]:
        path = Path(self.marker)
        if not path.exists():
            path.write_text("died once")
            os._exit(13)  # no exception, no cleanup: the pool just breaks
        return {"survived": True}


@dataclass(frozen=True)
class SimLikeTask:
    """Mimics ``SimTask``'s payload shape for the replay-mode telemetry."""

    label: str
    mode: str  # "" = legacy payload without the replay_mode field

    kind = "sim"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "label": self.label, "mode": self.mode}

    @cached_property
    def key(self) -> str:
        return task_key(self.payload())

    def describe(self) -> str:
        return f"sim:{self.label}"

    def execute(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {"label": self.label}
        if self.mode:
            summary["replay_mode"] = self.mode
        return {"kind": "sim", "summary": summary}


class TestSerialExecution:
    def test_payloads_align_with_tasks(self):
        tasks = [AddTask(1, 2), AddTask(3, 4)]
        report = run_campaign(tasks)
        assert report.ok
        assert report.payloads() == [{"sum": 3}, {"sum": 7}]
        assert report.stats.executed == 2

    def test_duplicate_tasks_execute_once(self):
        tasks = [AddTask(1, 2), AddTask(1, 2), AddTask(1, 2)]
        report = run_campaign(tasks)
        assert report.payloads() == [{"sum": 3}] * 3
        assert report.stats.unique == 1
        assert report.stats.executed == 1
        assert report.stats.dedup_hits == 2
        assert [r.source for r in report.records] == [
            SOURCE_EXECUTED,
            SOURCE_DEDUP,
            SOURCE_DEDUP,
        ]

    def test_invalid_arguments(self):
        with pytest.raises(CampaignError, match="jobs"):
            run_campaign([AddTask(1, 2)], jobs=0)
        with pytest.raises(CampaignError, match="retries"):
            run_campaign([AddTask(1, 2)], retries=-1)
        with pytest.raises(CampaignError, match="resume"):
            run_campaign([AddTask(1, 2)], resume="nope")


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [AddTask(1, 2), AddTask(3, 4)]
        cold = run_campaign(tasks, cache=cache)
        warm = run_campaign(tasks, cache=cache)
        assert cold.stats.executed == 2 and cold.stats.hits == 0
        assert warm.stats.executed == 0 and warm.stats.cache_hits == 2
        assert warm.stats.hit_ratio == 1.0
        assert warm.payloads() == cold.payloads()
        assert all(r.source == SOURCE_CACHE for r in warm.records)

    def test_cache_shared_across_overlapping_campaigns(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign([AddTask(1, 2)], cache=cache)
        report = run_campaign([AddTask(1, 2), AddTask(9, 9)], cache=cache)
        assert report.stats.cache_hits == 1
        assert report.stats.executed == 1


class TestResume:
    def test_resume_reuses_journal_not_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [AddTask(1, 2), AddTask(3, 4)]
        first = run_campaign(tasks, cache=cache, run_id="runA")
        assert (first.run_dir / JOURNAL_NAME).is_file()
        # Burn the cache: only the journal can satisfy the resume.
        for entry in (tmp_path / "cache" / "objects").rglob("*.json"):
            entry.unlink()
        resumed = run_campaign(tasks, cache=cache, resume="runA")
        assert resumed.run_id == "runA"
        assert resumed.stats.executed == 0
        assert resumed.stats.journal_hits == 2
        assert resumed.payloads() == first.payloads()
        assert all(r.source == SOURCE_JOURNAL for r in resumed.records)

    def test_resume_executes_only_missing_tasks(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign([AddTask(1, 2)], cache=cache, run_id="runB")
        for entry in (tmp_path / "cache" / "objects").rglob("*.json"):
            entry.unlink()
        grown = run_campaign(
            [AddTask(1, 2), AddTask(5, 5)], cache=cache, resume="runB"
        )
        assert grown.stats.journal_hits == 1
        assert grown.stats.executed == 1
        assert grown.payloads() == [{"sum": 3}, {"sum": 10}]

    def test_resume_unknown_run_raises(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(CampaignError, match="nothing to resume"):
            run_campaign([AddTask(1, 2)], cache=cache, resume="ghost")


class TestRetries:
    def test_serial_retry_recovers(self, tmp_path):
        task = FlakyTask(marker=str(tmp_path / "flaky1"), fail_times=2)
        report = run_campaign([task], retries=2, backoff_s=0.0)
        assert report.ok
        assert report.records[0].attempts == 3
        assert report.stats.retries == 2

    def test_serial_retries_exhausted(self, tmp_path):
        task = FlakyTask(marker=str(tmp_path / "flaky2"), fail_times=5)
        report = run_campaign([task], retries=1, backoff_s=0.0)
        assert not report.ok
        assert report.stats.failures == 1
        assert "flaky failure" in report.failures()[0].error

    def test_failure_does_not_abort_campaign(self, tmp_path):
        bad = FlakyTask(marker=str(tmp_path / "flaky3"), fail_times=9)
        good = AddTask(2, 2)
        report = run_campaign([bad, good], retries=0, backoff_s=0.0)
        assert not report.ok
        assert report.payloads()[0] is None
        assert report.payloads()[1] == {"sum": 4}

    def test_parallel_retry_recovers(self, tmp_path):
        task = FlakyTask(marker=str(tmp_path / "flaky4"), fail_times=1)
        report = run_campaign(
            [task, AddTask(1, 1)], jobs=2, retries=2, backoff_s=0.0
        )
        assert report.ok
        assert report.stats.retries == 1

    def test_worker_crash_recovers_on_fresh_pool(self, tmp_path):
        task = CrashTask(marker=str(tmp_path / "crash1"))
        report = run_campaign(
            [task, AddTask(4, 4)], jobs=2, retries=2, backoff_s=0.0
        )
        assert report.ok
        crash_record = report.records[0]
        assert crash_record.payload == {"survived": True}
        assert crash_record.attempts >= 2


class TestParallelEquivalence:
    def test_parallel_payloads_identical_to_serial(self):
        tasks = [AddTask(i, i + 1) for i in range(6)]
        serial = run_campaign(tasks, jobs=1)
        parallel = run_campaign(tasks, jobs=2)
        assert serial.ok and parallel.ok
        assert parallel.payloads() == serial.payloads()


class TestTelemetry:
    def test_summary_json_written(self, tmp_path):
        import json

        cache = ResultCache(tmp_path / "cache")
        report = run_campaign([AddTask(1, 2)], cache=cache, run_id="runT")
        summary = json.loads((report.run_dir / "campaign.json").read_text())
        assert summary["run_id"] == "runT"
        assert summary["tasks"] == 1
        assert summary["executed"] == 1
        assert summary["tasks_detail"][0]["kind"] == "add"
        assert summary["tasks_detail"][0]["wall_s"] >= 0.0

    def test_render_summary_mentions_counters(self):
        report = run_campaign([AddTask(1, 2), AddTask(1, 2)])
        text = report.render_summary()
        assert "2 task(s), 1 unique" in text
        assert "dedup hits    1" in text

    def test_replay_mode_counts(self):
        tasks = [
            SimLikeTask("a", "epoch"),
            SimLikeTask("b", "epoch"),
            SimLikeTask("c", "vectorized"),
            SimLikeTask("d", ""),  # pre-field cached payload -> scalar
            SimLikeTask("e", "missrun"),
            AddTask(1, 2),  # non-sim payloads never count
        ]
        report = run_campaign(tasks)
        counts = {"epoch": 2, "missrun": 1, "scalar": 1, "vectorized": 1}
        assert report.replay_mode_counts() == counts
        assert report.telemetry()["replay_modes"] == counts
        assert "replay modes  epoch=2 missrun=1 scalar=1 vectorized=1" in (
            report.render_summary()
        )

    def test_replay_modes_absent_without_sim_tasks(self):
        report = run_campaign([AddTask(1, 2)])
        assert report.replay_mode_counts() == {}
        assert "replay modes" not in report.render_summary()

    def test_sim_summary_payload_round_trip(self):
        from repro.campaign.tasks import SimSummary

        summary = SimSummary(
            label="JOINT", duration_s=1.0, memory_energy_j=1.0,
            disk_energy_j=1.0, total_accesses=1, disk_page_accesses=0,
            disk_requests=0, disk_write_pages=0, mean_latency_s=0.0,
            long_latency=0, wake_long_latency=0, spin_down_cycles=0,
            utilization=0.0, replay_mode="epoch",
        )
        payload = summary.to_payload()
        assert payload["replay_mode"] == "epoch"
        assert SimSummary.from_payload(payload) == summary
        # Payloads cached before the field existed still load (scalar).
        legacy = dict(payload)
        del legacy["replay_mode"]
        assert SimSummary.from_payload(legacy).replay_mode == "scalar"

    def test_missrun_mode_flows_end_to_end(self, fast_machine):
        """A real request-blind SimTask lands as missrun in the rollup."""
        from repro.campaign.tasks import SimTask, WorkloadSpec
        from repro.policies.registry import parse_method

        workload = WorkloadSpec.for_machine(
            fast_machine,
            dataset_gb=2.0,
            rate_mb=20.0,
            popularity=0.2,
            duration_s=240.0,
            seed=3,
        )
        task = SimTask(
            method=parse_method("2TFM-4GB"),
            machine=fast_machine,
            workload=workload,
            duration_s=240.0,
        )
        report = run_campaign([task])
        assert report.ok
        assert report.replay_mode_counts() == {"missrun": 1}
        summary = report.payloads()[0]["summary"]
        assert summary["replay_mode"] == "missrun"
