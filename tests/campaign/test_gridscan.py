"""Cross-trace grid sweeps: the batched pass == the per-cell reference.

The load-bearing assertion is *bitwise* equality between
:func:`grid_scan` and :func:`naive_grid_scan` on every result field,
float arrays included -- the broadcast ``max(gap - timeout, 0)`` rows
must reduce exactly like each cell's independent 1-D sum, or sweep
results would depend on which evaluator produced them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.profile import clear_memo, get_profile, set_active_cache
from repro.campaign.gridscan import GridScanResult, grid_scan, naive_grid_scan
from repro.errors import SimulationError
from repro.traces.suites import build


@pytest.fixture(autouse=True)
def _memo_only():
    previous = set_active_cache(None)
    clear_memo()
    yield
    set_active_cache(previous)
    clear_memo()


@pytest.fixture(scope="module")
def traces(machine):
    return [
        build("paper-default", machine, 600.0, seed=3),
        build("bursty", machine, 600.0, seed=5),
        build("write-heavy", machine, 600.0, seed=7),
    ]


def page_sizes(machine, *pages):
    return [machine.page_bytes * p for p in pages]


class TestExactEquality:
    def test_batched_matches_naive_bitwise(self, machine, traces):
        sizes = page_sizes(machine, 1, 16, 256, 4096)
        timeouts = [0.0, 1.0, machine.disk.break_even_time_s, 30.0, 600.0]
        batched = grid_scan(traces, machine, sizes, timeouts)
        naive = naive_grid_scan(traces, machine, sizes, timeouts)
        assert batched.trace_keys == naive.trace_keys
        assert np.array_equal(batched.memory_bytes, naive.memory_bytes)
        assert np.array_equal(batched.timeouts_s, naive.timeouts_s)
        assert np.array_equal(batched.miss_counts, naive.miss_counts)
        assert np.array_equal(batched.spin_downs, naive.spin_downs)
        # Bitwise, not approximate: array_equal on float64 is exact.
        assert np.array_equal(batched.sleep_s, naive.sleep_s)
        assert np.array_equal(batched.est_savings_j, naive.est_savings_j)

    def test_cold_profiles_also_match(self, machine, traces):
        sizes = page_sizes(machine, 8, 512)
        timeouts = [5.0, 60.0]
        batched = grid_scan(
            traces[:2], machine, sizes, timeouts, warm_start=False
        )
        naive = naive_grid_scan(
            traces[:2], machine, sizes, timeouts, warm_start=False
        )
        assert np.array_equal(batched.sleep_s, naive.sleep_s)
        assert np.array_equal(batched.spin_downs, naive.spin_downs)
        assert np.array_equal(batched.miss_counts, naive.miss_counts)


class TestSemantics:
    def test_shapes_and_keys(self, machine, traces):
        sizes = page_sizes(machine, 4, 64, 1024)
        timeouts = [1.0, 10.0]
        result = grid_scan(traces, machine, sizes, timeouts)
        assert isinstance(result, GridScanResult)
        assert result.num_traces == len(traces)
        assert result.miss_counts.shape == (3, 3)
        assert result.spin_downs.shape == (3, 3, 2)
        assert result.sleep_s.shape == (3, 3, 2)
        assert result.est_savings_j.shape == (3, 3, 2)
        for trace, key in zip(traces, result.trace_keys):
            assert key == get_profile(trace).key

    def test_miss_counts_match_profile(self, machine, traces):
        sizes = page_sizes(machine, 2, 128)
        result = grid_scan(traces, machine, sizes, [10.0])
        for r, trace in enumerate(traces):
            profile = get_profile(trace)
            for s, capacity in enumerate([2, 128]):
                hits = profile.hit_mask(capacity, trace.num_accesses)
                assert result.miss_counts[r, s] == trace.num_accesses - int(
                    hits.sum()
                )

    def test_monotone_in_both_axes(self, machine, traces):
        """More memory -> fewer misses; longer timeout -> fewer
        spin-downs and less sleep (per trace, elementwise)."""
        sizes = page_sizes(machine, 1, 32, 1024, 32768)
        timeouts = [0.0, 2.0, 20.0, 200.0]
        result = grid_scan(traces, machine, sizes, timeouts)
        assert np.all(np.diff(result.miss_counts, axis=1) <= 0)
        assert np.all(np.diff(result.spin_downs, axis=2) <= 0)
        assert np.all(np.diff(result.sleep_s, axis=2) <= 0)

    def test_zero_timeout_sleeps_all_idle(self, machine, traces):
        """At timeout 0 every gap is slept in full, so total sleep is
        the trace duration minus nothing -- the sum of all gaps."""
        trace = traces[0]
        result = grid_scan([trace], machine, page_sizes(machine, 64), [0.0])
        assert result.sleep_s[0, 0, 0] == pytest.approx(trace.duration_s)

    def test_savings_arithmetic(self, machine, traces):
        result = grid_scan(
            traces[:1], machine, page_sizes(machine, 64), [15.0]
        )
        disk = machine.disk
        expected = (
            disk.static_power_watts * result.sleep_s
            - result.spin_downs * disk.transition_energy_joules
        )
        assert np.array_equal(result.est_savings_j, expected)

    def test_total_savings_and_best_candidate(self, machine, traces):
        sizes = page_sizes(machine, 16, 256)
        timeouts = [1.0, 60.0]
        result = grid_scan(traces, machine, sizes, timeouts)
        totals = result.total_savings()
        assert totals.shape == (2, 2)
        assert np.array_equal(totals, result.est_savings_j.sum(axis=0))
        best_size, best_timeout = result.best_candidate()
        s, t = np.unravel_index(int(np.argmax(totals)), totals.shape)
        assert best_size == sizes[s]
        assert best_timeout == timeouts[t]


class TestValidation:
    def test_rejects_empty_axes(self, machine, traces):
        with pytest.raises(SimulationError):
            grid_scan(traces, machine, [], [1.0])
        with pytest.raises(SimulationError):
            grid_scan(traces, machine, page_sizes(machine, 1), [])

    def test_rejects_no_traces(self, machine):
        with pytest.raises(SimulationError):
            grid_scan([], machine, page_sizes(machine, 1), [1.0])

    def test_rejects_negative_candidates(self, machine, traces):
        with pytest.raises(SimulationError):
            grid_scan(traces, machine, [-machine.page_bytes], [1.0])
        with pytest.raises(SimulationError):
            grid_scan(traces, machine, page_sizes(machine, 1), [-1.0])

    def test_rejects_unaligned_sizes(self, machine, traces):
        with pytest.raises(SimulationError):
            grid_scan(traces, machine, [machine.page_bytes + 1], [1.0])
