"""Acceptance: parallel == serial, and resume never recomputes.

These are the subsystem's two headline guarantees, tested end to end on
real simulation tasks rather than fakes.
"""

from __future__ import annotations

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.experiments.base import ExperimentConfig
from repro.sim.sweep import sweep


def _mini_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=1024,
        period_s=120.0,
        warmup_periods=1,
        measure_periods=2,
        dataset_gb=4.0,
        data_rate_mb=50.0,
        fm_sizes_gb=[8, 128],
    )


class TestParallelIdentical:
    def test_sweep_rows_byte_identical_across_jobs(self, fast_machine):
        kwargs = dict(
            methods=["JOINT", "2TFM-8GB"],
            grid={"dataset_gb": [2.0, 4.0]},
            duration_s=240.0,
            warmup_s=120.0,
            defaults={"rate_mb": 20.0, "popularity": 0.2},
        )
        serial = sweep(fast_machine, **kwargs)
        parallel = sweep(fast_machine, jobs=2, **kwargs)
        assert parallel == serial

    def test_experiment_rows_byte_identical_across_jobs(self):
        from repro.experiments import writes

        plan = writes.plan(_mini_config(), write_fractions=[0.0, 0.1])
        serial = run_campaign(plan.tasks, jobs=1)
        parallel = run_campaign(plan.tasks, jobs=2)
        assert serial.ok and parallel.ok
        assert parallel.payloads() == serial.payloads()
        assert (
            plan.assemble(parallel.payloads()).rows
            == plan.assemble(serial.payloads()).rows
        )


class TestResumeRecomputesNothing:
    def test_completed_tasks_all_come_back_cached(self, tmp_path):
        from repro.experiments import ablation

        plan = ablation.plan(_mini_config(), datasets_gb=[4.0])
        cache = ResultCache(tmp_path / "cache")
        first = run_campaign(plan.tasks, cache=cache, run_id="seed-run")
        assert first.ok and first.stats.executed == len(plan.tasks)

        resumed = run_campaign(plan.tasks, cache=cache, resume="seed-run")
        assert resumed.ok
        assert resumed.stats.executed == 0
        assert resumed.stats.journal_hits == len(plan.tasks)
        assert resumed.stats.hit_ratio == 1.0
        assert resumed.payloads() == first.payloads()

    def test_warm_cache_hit_ratio_meets_acceptance_bar(self, tmp_path):
        from repro.experiments import ablation

        plan = ablation.plan(_mini_config(), datasets_gb=[4.0])
        cache = ResultCache(tmp_path / "cache")
        run_campaign(plan.tasks, cache=cache)
        warm = run_campaign(plan.tasks, cache=cache)
        assert warm.stats.hit_ratio >= 0.95
