"""Content hashing: canonical JSON, code fingerprint, task keys."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.campaign.hashing import (
    canonical_json,
    code_fingerprint,
    digest,
    task_key,
)
from repro.campaign.tasks import ExperimentTask, SimTask, VerifyTask, WorkloadSpec
from repro.experiments.base import quick_config
from repro.policies.registry import parse_method


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_nested_containers(self):
        text = canonical_json({"xs": [1, 2], "t": (3, 4), "s": {5}})
        assert "[3, 4]".replace(" ", "") in text.replace(" ", "")

    def test_numpy_scalars_normalise(self):
        assert canonical_json({"x": np.int64(3)}) == canonical_json({"x": 3})
        assert canonical_json({"x": np.float64(0.5)}) == canonical_json(
            {"x": 0.5}
        )

    def test_dataclasses_serialise(self):
        spec = WorkloadSpec(
            dataset_gb=4.0,
            rate_mb=50.0,
            popularity=0.1,
            duration_s=100.0,
            seed=7,
        )
        assert canonical_json(spec) == canonical_json(dataclasses.asdict(spec))

    def test_digest_is_hex_sha256(self):
        value = digest({"a": 1})
        assert len(value) == 64
        int(value, 16)  # hex or raise


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_is_hex(self):
        int(code_fingerprint(), 16)


@pytest.fixture(scope="module")
def sim_task(fast_machine):
    workload = WorkloadSpec.for_machine(
        fast_machine,
        dataset_gb=2.0,
        rate_mb=20.0,
        popularity=0.2,
        duration_s=240.0,
        seed=3,
    )
    return SimTask(
        method=parse_method("JOINT"),
        machine=fast_machine,
        workload=workload,
        duration_s=240.0,
        warmup_s=120.0,
    )


class TestTaskKeys:
    def test_key_stable_across_instances(self, sim_task):
        clone = dataclasses.replace(sim_task)
        assert clone is not sim_task
        assert clone.key == sim_task.key

    def test_key_changes_with_any_parameter(self, sim_task):
        other_seed = dataclasses.replace(
            sim_task,
            workload=dataclasses.replace(sim_task.workload, seed=4),
        )
        other_method = dataclasses.replace(
            sim_task, method=parse_method("ALWAYS-ON")
        )
        other_warmup = dataclasses.replace(sim_task, warmup_s=0.0)
        keys = {
            sim_task.key,
            other_seed.key,
            other_method.key,
            other_warmup.key,
        }
        assert len(keys) == 4

    def test_kinds_do_not_collide(self):
        config = quick_config()
        experiment = ExperimentTask(name="fig5", config=config)
        verify = VerifyTask(check="stack", first_seed=0, seeds=5)
        assert experiment.key != verify.key

    def test_key_ignores_nothing_in_payload(self, sim_task):
        # The key is a pure function of the payload + code fingerprint.
        assert sim_task.key == task_key(sim_task.payload())
