"""Grid plans: decomposition, reassembly, and experiment plan parity."""

from __future__ import annotations

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import (
    CampaignPlan,
    GridPoint,
    grid_tasks,
    resolve_methods,
    run_plan,
    split_by_point,
)
from repro.campaign.tasks import WorkloadSpec, execute_task
from repro.errors import CampaignError


@pytest.fixture(scope="module")
def points(fast_machine):
    methods = resolve_methods(["JOINT", "ALWAYS-ON"])
    return [
        GridPoint(
            machine=fast_machine,
            workload=WorkloadSpec.for_machine(
                fast_machine,
                dataset_gb=dataset_gb,
                rate_mb=20.0,
                popularity=0.2,
                duration_s=240.0,
                seed=10 + index,
            ),
            methods=methods,
            duration_s=240.0,
            warmup_s=120.0,
            meta=(("dataset_gb", dataset_gb),),
        )
        for index, dataset_gb in enumerate([2.0, 4.0])
    ]


class TestGridDecomposition:
    def test_point_major_method_order(self, points):
        tasks = grid_tasks(points)
        assert [t.method.label for t in tasks] == [
            "JOINT",
            "ALWAYS-ON",
            "JOINT",
            "ALWAYS-ON",
        ]
        assert tasks[0].workload == points[0].workload
        assert tasks[2].workload == points[1].workload

    def test_split_is_inverse_of_flatten(self, points):
        tasks = grid_tasks(points)
        payloads = [execute_task(task) for task in tasks]
        grouped = split_by_point(points, payloads)
        assert [point for point, _ in grouped] == list(points)
        for _, by_label in grouped:
            assert list(by_label) == ["JOINT", "ALWAYS-ON"]

    def test_missing_payload_raises(self, points):
        tasks = grid_tasks(points)
        payloads = [execute_task(task) for task in tasks]
        payloads[1] = None
        with pytest.raises(CampaignError, match="missing result"):
            split_by_point(points, payloads)

    def test_shape_mismatch_raises(self, points):
        tasks = grid_tasks(points)
        payloads = [execute_task(task) for task in tasks]
        with pytest.raises(CampaignError, match="shape mismatch"):
            split_by_point(points, payloads + payloads[-1:])


class TestRunPlan:
    def test_custom_runner_receives_tasks(self, points):
        plan = CampaignPlan(
            tasks=grid_tasks(points[:1]),
            assemble=lambda payloads: len(payloads),
        )
        seen = {}

        def runner(tasks):
            seen["n"] = len(tasks)
            return [execute_task(task) for task in tasks]

        assert run_plan(plan, runner) == 2
        assert seen["n"] == 2


class TestExperimentPlans:
    """Every registered experiment must split and reassemble losslessly."""

    def test_grid_experiment_campaign_equals_direct_run(self, mini_config):
        from repro.experiments import ablation
        from repro.experiments.registry import get_plan

        direct = ablation.run(mini_config, datasets_gb=[4.0])
        plan = get_plan("ablation", mini_config)
        # ablation's default datasets differ; re-plan with the same subset.
        plan = ablation.plan(mini_config, datasets_gb=[4.0])
        report = run_campaign(plan.tasks, jobs=1)
        assert report.ok
        assembled = plan.assemble(report.payloads())
        assert assembled.rows == direct.rows
        assert assembled.title == direct.title

    def test_atomic_experiment_fallback(self, mini_config):
        from repro.experiments import fig5_pareto
        from repro.experiments.registry import get_plan

        plan = get_plan("fig5", mini_config)
        assert len(plan.tasks) == 1
        assert plan.tasks[0].kind == "experiment"
        result = run_plan(plan)
        assert result.rows == fig5_pareto.run(mini_config).rows


@pytest.fixture(scope="module")
def mini_config():
    from repro.experiments.base import ExperimentConfig

    return ExperimentConfig(
        scale=1024,
        period_s=120.0,
        warmup_periods=1,
        measure_periods=2,
        dataset_gb=4.0,
        data_rate_mb=50.0,
        fm_sizes_gb=[8, 128],
    )
