"""Campaign orchestration tests."""
