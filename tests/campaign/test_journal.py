"""The JSONL run journal."""

from __future__ import annotations

import json

import pytest

from repro.campaign.journal import (
    JOURNAL_NAME,
    RunJournal,
    completed_payloads,
    read_events,
)
from repro.errors import CampaignError


class TestRunJournal:
    def test_events_roundtrip_in_order(self, tmp_path):
        run_dir = tmp_path / "run1"
        with RunJournal(run_dir) as journal:
            journal.append("run_started", tasks=2)
            journal.append("task_done", key="k1", payload={"a": 1})
            journal.append("run_finished")
        events = list(read_events(run_dir))
        assert [e["event"] for e in events] == [
            "run_started",
            "task_done",
            "run_finished",
        ]
        assert all("ts" in e for e in events)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="nothing to resume"):
            list(read_events(tmp_path / "absent"))

    def test_truncated_line_skipped(self, tmp_path):
        run_dir = tmp_path / "run2"
        with RunJournal(run_dir) as journal:
            journal.append("task_done", key="k1", payload={"a": 1})
        path = run_dir / JOURNAL_NAME
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "task_done", "key": "k2", "pay')  # crash
        events = list(read_events(run_dir))
        assert len(events) == 1 and events[0]["key"] == "k1"

    def test_completed_payloads_collects_task_done_only(self, tmp_path):
        run_dir = tmp_path / "run3"
        with RunJournal(run_dir) as journal:
            journal.append("run_started")
            journal.append("task_done", key="k1", payload={"a": 1})
            journal.append("task_failed", key="k2", error="boom")
            journal.append("task_done", key="k3", payload={"b": 2})
        done = completed_payloads(run_dir)
        assert done == {"k1": {"a": 1}, "k3": {"b": 2}}

    def test_later_entry_wins_for_duplicate_key(self, tmp_path):
        run_dir = tmp_path / "run4"
        with RunJournal(run_dir) as journal:
            journal.append("task_done", key="k1", payload={"v": 1})
            journal.append("task_done", key="k1", payload={"v": 2})
        assert completed_payloads(run_dir) == {"k1": {"v": 2}}

    def test_lines_are_plain_json(self, tmp_path):
        run_dir = tmp_path / "run5"
        with RunJournal(run_dir) as journal:
            journal.append("task_done", key="k1", payload={"a": [1, 2]})
        lines = (run_dir / JOURNAL_NAME).read_text().splitlines()
        assert json.loads(lines[0])["payload"] == {"a": [1, 2]}
