"""The content-addressed on-disk result cache."""

from __future__ import annotations

from repro.campaign.cache import (
    CACHE_ENV,
    NullCache,
    ResultCache,
    default_cache_root,
)

KEY = "ab" + "0" * 62


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"kind": "sim", "summary": {"x": 1.5}}
        assert cache.get(KEY) is None
        cache.put(KEY, payload)
        assert cache.get(KEY) == payload
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"a": 1})
        assert (tmp_path / "objects" / "ab" / f"{KEY}.json").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"a": 1})
        path = tmp_path / "objects" / "ab" / f"{KEY}.json"
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # An entry whose recorded key disagrees with its filename (e.g. a
        # hand-copied file) must not be served.
        cache = ResultCache(tmp_path)
        other = "cd" + "0" * 62
        cache.put(other, {"a": 1})
        src = tmp_path / "objects" / "cd" / f"{other}.json"
        dst = tmp_path / "objects" / "ab"
        dst.mkdir(parents=True)
        (dst / f"{KEY}.json").write_text(
            src.read_text(encoding="utf-8"), encoding="utf-8"
        )
        assert cache.get(KEY) is None

    def test_overwrite_is_atomic_replace(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, {"v": 1})
        cache.put(KEY, {"v": 2})
        assert cache.get(KEY) == {"v": 2}
        assert len(cache) == 1


class TestDefaultRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        root = default_cache_root()
        assert root.name == "repro" and root.parent.name == ".cache"


class TestNullCache:
    def test_remembers_nothing(self):
        cache = NullCache()
        cache.put(KEY, {"a": 1})
        assert cache.get(KEY) is None
        assert len(cache) == 0
        assert cache.root is None
