"""Disk power-management policies."""

from __future__ import annotations

import math

import pytest

from repro.errors import PolicyError
from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import NO_CHANGE, DiskPolicy
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.policies.oracle import OraclePolicy


class TestBasePolicy:
    def test_defaults_change_nothing(self):
        policy = DiskPolicy()
        assert policy.initial_timeout() is None
        assert policy.on_request(0.0, 0.1, 0.0, 1.0) is NO_CHANGE
        assert policy.on_idle_start(0.0, None) is NO_CHANGE
        assert policy.on_period(0.0) is NO_CHANGE


class TestAlwaysOn:
    def test_never_spins_down(self):
        assert AlwaysOnPolicy().initial_timeout() is None


class TestFixedTimeout:
    def test_two_competitive_value(self):
        policy = FixedTimeoutPolicy(11.7)
        assert policy.initial_timeout() == 11.7

    def test_rejects_negative(self):
        with pytest.raises(PolicyError):
            FixedTimeoutPolicy(-1.0)

    def test_never_adapts(self):
        policy = FixedTimeoutPolicy(11.7)
        assert policy.on_request(0.0, 20.0, 8.0, 100.0) is NO_CHANGE


class TestAdaptiveTimeout:
    def test_paper_defaults(self):
        policy = AdaptiveTimeoutPolicy()
        assert policy.initial_timeout() == 10.0
        assert policy.min_s == 5.0 and policy.max_s == 30.0
        assert policy.step_s == 5.0
        assert policy.max_delay_ratio == 0.05

    def test_costly_wake_increases_timeout(self):
        policy = AdaptiveTimeoutPolicy()
        # 8-s wake after a 20-s idle: ratio 0.4 > 0.05 -> too eager.
        update = policy.on_request(100.0, 8.1, 8.0, 20.0)
        assert update == 15.0

    def test_cheap_wake_decreases_timeout(self):
        policy = AdaptiveTimeoutPolicy()
        # 8-s wake after 1000-s idle: ratio 0.008 < 0.05 -> spin earlier.
        update = policy.on_request(100.0, 8.1, 8.0, 1000.0)
        assert update == 5.0

    def test_no_wake_no_adaptation(self):
        policy = AdaptiveTimeoutPolicy()
        assert policy.on_request(0.0, 0.01, 0.0, 100.0) is NO_CHANGE

    def test_clamped_at_bounds(self):
        policy = AdaptiveTimeoutPolicy()
        for _ in range(10):
            policy.on_request(0.0, 8.1, 8.0, 20.0)
        assert policy.timeout_s == 30.0
        # Saturated adaptation reports NO_CHANGE.
        assert policy.on_request(0.0, 8.1, 8.0, 20.0) is NO_CHANGE
        for _ in range(10):
            policy.on_request(0.0, 8.1, 8.0, 1e6)
        assert policy.timeout_s == 5.0

    def test_zero_idle_counts_as_costly(self):
        policy = AdaptiveTimeoutPolicy()
        assert policy.on_request(0.0, 8.1, 8.0, 0.0) == 15.0

    def test_history_recorded(self):
        policy = AdaptiveTimeoutPolicy()
        policy.on_request(42.0, 8.1, 8.0, 20.0)
        assert policy.history == [(42.0, 15.0)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start_s": 40.0},
            {"min_s": 0.0},
            {"step_s": 0.0},
            {"max_delay_ratio": 0.0},
            {"max_delay_ratio": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PolicyError):
            AdaptiveTimeoutPolicy(**kwargs)


class TestOracle:
    def test_long_gap_spins_down_immediately(self):
        policy = OraclePolicy(break_even_s=11.7)
        assert policy.on_idle_start(0.0, 100.0) == 0.0

    def test_short_gap_stays_up(self):
        policy = OraclePolicy(break_even_s=11.7)
        assert policy.on_idle_start(0.0, 5.0) == math.inf

    def test_gap_equal_to_break_even_stays_up(self):
        policy = OraclePolicy(break_even_s=11.7)
        assert policy.on_idle_start(0.0, 11.7) == math.inf

    def test_trace_end_spins_down(self):
        policy = OraclePolicy(break_even_s=11.7)
        assert policy.on_idle_start(0.0, None) == 0.0

    def test_validation(self):
        with pytest.raises(PolicyError):
            OraclePolicy(break_even_s=0.0)
