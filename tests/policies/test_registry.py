"""Method-name parsing and the standard comparison set."""

from __future__ import annotations

import pytest

from repro.config.machine import paper_machine
from repro.errors import PolicyError
from repro.memory.system import (
    DisableMemorySystem,
    NapMemorySystem,
    PowerDownMemorySystem,
)
from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.registry import parse_method, standard_methods
from repro.units import GB


class TestParsing:
    def test_paper_names(self):
        spec = parse_method("2TFM-8GB")
        assert spec.disk == "2T"
        assert spec.memory == "FM"
        assert spec.memory_bytes == 8 * GB

    def test_adpd(self):
        spec = parse_method("ADPD-128GB")
        assert spec.disk == "AD"
        assert spec.memory == "PD"
        assert spec.memory_bytes == 128 * GB

    def test_joint(self):
        assert parse_method("JOINT").is_joint
        assert parse_method("joint").is_joint

    def test_always_on(self):
        spec = parse_method("ALWAYS-ON")
        assert spec.disk == "ON"
        assert spec.memory == "NAP"

    def test_case_insensitive(self):
        assert parse_method("2tds-128gb").label == "2TDS-128GB"

    def test_fm_requires_size(self):
        with pytest.raises(PolicyError):
            parse_method("2TFM")

    def test_garbage_rejected(self):
        with pytest.raises(PolicyError):
            parse_method("XXYZ-1GB")


class TestBuilders:
    @pytest.fixture(scope="class")
    def machine(self):
        return paper_machine().scaled(1024)

    def test_disk_policies(self, machine):
        assert isinstance(
            parse_method("2TFM-8GB").build_disk_policy(machine), FixedTimeoutPolicy
        )
        assert isinstance(
            parse_method("ADFM-8GB").build_disk_policy(machine),
            AdaptiveTimeoutPolicy,
        )
        assert isinstance(
            parse_method("ALWAYS-ON").build_disk_policy(machine), AlwaysOnPolicy
        )
        assert isinstance(
            parse_method("ORFM-8GB").build_disk_policy(machine), OraclePolicy
        )

    def test_two_competitive_uses_break_even(self, machine):
        policy = parse_method("2TFM-8GB").build_disk_policy(machine)
        assert policy.timeout_s == pytest.approx(machine.disk.break_even_time_s)

    def test_joint_has_no_disk_policy(self, machine):
        with pytest.raises(PolicyError):
            parse_method("JOINT").build_disk_policy(machine)

    def test_memory_systems(self, machine):
        assert isinstance(
            parse_method("2TFM-8GB").build_memory_system(machine), NapMemorySystem
        )
        assert isinstance(
            parse_method("2TPD-128GB").build_memory_system(machine),
            PowerDownMemorySystem,
        )
        assert isinstance(
            parse_method("2TDS-128GB").build_memory_system(machine),
            DisableMemorySystem,
        )

    def test_fm_capacity(self, machine):
        memory = parse_method("2TFM-8GB").build_memory_system(machine)
        assert memory.capacity_bytes == 8 * GB


class TestStandardSet:
    def test_paper_comparison_has_16_entries(self):
        methods = standard_methods()
        labels = [m.label for m in methods]
        assert len(labels) == 16  # joint + 14 + always-on
        assert labels[0] == "JOINT"
        assert labels[-1] == "ALWAYS-ON"
        assert "2TFM-8GB" in labels and "ADDS-128GB" in labels

    def test_custom_fm_sizes(self):
        methods = standard_methods(fm_sizes_gb=[4])
        labels = [m.label for m in methods]
        assert "2TFM-4GB" in labels
        assert len(labels) == 8

    def test_oracle_extension(self):
        labels = [m.label for m in standard_methods(include_oracle=True)]
        assert "ORFM-128GB" in labels
