"""Exponential-average predictive spin-down (EA)."""

from __future__ import annotations

import math

import pytest

from repro.errors import PolicyError
from repro.policies.base import NO_CHANGE
from repro.policies.predictive import PredictiveSpinDownPolicy


@pytest.fixture()
def policy():
    return PredictiveSpinDownPolicy(break_even_s=11.7, smoothing=0.5)


class TestPrediction:
    def test_initial_prediction_conservative(self, policy):
        # Starts at break-even exactly: not strictly above, so stay up.
        assert policy.initial_timeout() is None

    def test_long_idles_trigger_immediate_spin_down(self, policy):
        update = policy.on_request(0.0, 0.01, 0.0, 100.0)
        assert policy.prediction_s > 11.7
        assert update == 0.0

    def test_short_idles_keep_disk_up(self, policy):
        for _ in range(6):
            update = policy.on_request(0.0, 0.01, 0.0, 0.5)
        assert policy.prediction_s < 11.7
        assert update == math.inf

    def test_exponential_average_formula(self, policy):
        before = policy.prediction_s
        policy.on_request(0.0, 0.01, 0.0, 20.0)
        assert policy.prediction_s == pytest.approx(0.5 * 20.0 + 0.5 * before)

    def test_saturation_clamp(self, policy):
        for _ in range(20):
            policy.on_request(0.0, 0.01, 0.0, 1e6)
        assert policy.prediction_s == pytest.approx(10 * 11.7)
        # One short idle pulls the prediction back down quickly.
        policy.on_request(0.0, 0.01, 0.0, 1.0)
        assert policy.prediction_s == pytest.approx(0.5 * 1.0 + 0.5 * 117.0)

    def test_zero_idle_ignored(self, policy):
        assert policy.on_request(0.0, 0.01, 0.0, 0.0) is NO_CHANGE


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"break_even_s": 0.0},
            {"break_even_s": 10.0, "smoothing": 0.0},
            {"break_even_s": 10.0, "smoothing": 1.5},
            {"break_even_s": 10.0, "clamp_factor": 0.5},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(PolicyError):
            PredictiveSpinDownPolicy(**kwargs)


class TestEndToEnd:
    def test_registry_and_run(self, fast_machine, small_trace):
        from repro.policies.registry import parse_method
        from repro.sim.runner import run_method

        spec = parse_method("EAFM-16GB")
        assert spec.disk == "EA"
        result = run_method(
            spec, small_trace, fast_machine, duration_s=480.0, audit=True
        )
        assert result.total_accesses > 0

    def test_between_always_on_and_oracle(self, fast_machine, small_trace):
        from repro.sim.runner import run_method

        results = {
            name: run_method(
                name, small_trace, fast_machine, duration_s=600.0, warmup_s=120.0
            )
            for name in ("ONFM-16GB", "EAFM-16GB", "ORFM-16GB")
        }
        oracle = results["ORFM-16GB"].disk_energy_j
        assert oracle <= results["EAFM-16GB"].disk_energy_j + 1e-6
        # A predictive policy must find *some* savings on an idle-rich
        # workload (or at worst tie the baseline).
        assert (
            results["EAFM-16GB"].disk_energy_j
            <= results["ONFM-16GB"].disk_energy_j + 1e-6
        )
