"""Pareto-adaptive timeout policy (PT)."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policies.base import NO_CHANGE
from repro.policies.pareto_timeout import MIN_INTERVALS, ParetoTimeoutPolicy


@pytest.fixture()
def policy():
    return ParetoTimeoutPolicy(break_even_s=11.7, aggregation_window_s=0.1)


class TestObservation:
    def test_initial_timeout_is_break_even(self, policy):
        assert policy.initial_timeout() == pytest.approx(11.7)

    def test_short_gaps_filtered(self, policy):
        policy.on_request(0.0, 0.01, 0.0, 0.05)  # below the 0.1-s window
        policy.on_request(1.0, 0.01, 0.0, 0.5)
        assert len(policy._intervals) == 1

    def test_requests_never_change_timeout_mid_period(self, policy):
        assert policy.on_request(0.0, 0.01, 0.0, 30.0) is NO_CHANGE


class TestPeriodRefit:
    def test_too_few_intervals_keeps_timeout(self, policy):
        for i in range(MIN_INTERVALS - 1):
            policy.on_request(float(i), 0.01, 0.0, 10.0)
        assert policy.on_period(600.0) is NO_CHANGE
        assert policy.timeout_s == pytest.approx(11.7)

    def test_refit_installs_eq5_timeout(self, policy):
        # Intervals with mean 30, min 10 -> alpha = 30/20 = 1.5,
        # timeout = 1.5 * 11.7 = 17.55 s.
        for gap in (10.0, 20.0, 30.0, 40.0, 50.0):
            policy.on_request(0.0, 0.01, 0.0, gap)
        update = policy.on_period(600.0)
        assert update == pytest.approx(1.5 * 11.7)
        assert policy.timeout_s == pytest.approx(1.5 * 11.7)
        assert policy.history == [(600.0, pytest.approx(1.5 * 11.7))]

    def test_intervals_reset_each_period(self, policy):
        for gap in (10.0, 20.0, 30.0, 40.0, 50.0):
            policy.on_request(0.0, 0.01, 0.0, gap)
        policy.on_period(600.0)
        assert policy.on_period(1200.0) is NO_CHANGE

    def test_many_short_intervals_raise_timeout(self, policy):
        # Nearly-equal intervals -> huge alpha -> huge timeout (the disk
        # effectively never spins down during bursts).
        for _ in range(20):
            policy.on_request(0.0, 0.01, 0.0, 1.0)
        update = policy.on_period(600.0)
        assert update > 1000.0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(PolicyError):
            ParetoTimeoutPolicy(break_even_s=0.0)
        with pytest.raises(PolicyError):
            ParetoTimeoutPolicy(break_even_s=10.0, aggregation_window_s=-1.0)
