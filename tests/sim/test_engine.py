"""Simulation engine on hand-built micro workloads with exact expectations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.disk_spec import DiskSpec
from repro.config.machine import MachineConfig
from repro.config.manager import ManagerConfig
from repro.config.memory_spec import MemorySpec
from repro.core.joint import JointPowerManager
from repro.errors import SimulationError
from repro.memory.system import NapMemorySystem
from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim.engine import SimulationEngine
from repro.traces.trace import Trace
from repro.units import KB


def micro_machine(period_s: float = 100.0) -> MachineConfig:
    """16 pages of memory in 4 banks; default disk; short periods."""
    return MachineConfig(
        memory=MemorySpec(
            installed_bytes=64 * KB,
            bank_bytes=16 * KB,
            chip_bytes=16 * KB,
            page_bytes=4 * KB,
        ),
        disk=DiskSpec(),
        manager=ManagerConfig(
            period_s=period_s,
            enumeration_unit_bytes=16 * KB,
            min_memory_bytes=16 * KB,
            max_candidates=8,
        ),
    )


def make_trace(times, pages):
    return Trace(
        times=np.asarray(times, dtype=float),
        pages=np.asarray(pages, dtype=np.int64),
        page_size=4 * KB,
    )


def run_engine(machine, trace, policy=None, duration=None, warmup=0.0, memory=None):
    memory = memory or NapMemorySystem(machine.memory, machine.memory.installed_bytes)
    engine = SimulationEngine(
        machine, memory, disk_policy=policy or AlwaysOnPolicy()
    )
    return engine.run(trace, duration_s=duration, warmup_s=warmup)


class TestBasicRuns:
    def test_miss_then_hit(self):
        machine = micro_machine()
        trace = make_trace([1.0, 2.0], [5, 5])
        result = run_engine(machine, trace, duration=100.0)
        assert result.total_accesses == 2
        assert result.disk_page_accesses == 1
        assert result.disk_requests == 1

    def test_all_hits_leave_disk_idle(self):
        machine = micro_machine()
        memory = NapMemorySystem(machine.memory, machine.memory.installed_bytes)
        memory.prefill([5])
        trace = make_trace([1.0, 2.0, 3.0], [5, 5, 5])
        result = run_engine(machine, trace, duration=100.0, memory=memory)
        assert result.disk_page_accesses == 0
        assert result.utilization == 0.0
        assert result.disk_energy.idle_s == pytest.approx(100.0)

    def test_latency_recorded(self):
        machine = micro_machine()
        trace = make_trace([1.0], [5])
        result = run_engine(machine, trace, duration=100.0)
        service = SimulationEngine(
            machine, NapMemorySystem(machine.memory, 64 * KB),
            disk_policy=AlwaysOnPolicy(),
        ).service.service_time(1)
        assert result.mean_latency_s == pytest.approx(service)

    def test_duration_defaults_to_whole_periods(self):
        machine = micro_machine(period_s=100.0)
        trace = make_trace([1.0, 150.0], [1, 2])
        result = run_engine(machine, trace)
        assert result.duration_s == 200.0
        assert len(result.periods) == 2

    def test_memory_energy_accrues(self):
        machine = micro_machine()
        trace = make_trace([1.0], [5])
        result = run_engine(machine, trace, duration=100.0)
        nap = machine.memory.mode_power_watts["nap"]
        assert result.memory_energy.static_j == pytest.approx(nap * 4 * 100.0)


class TestSpinDownPath:
    def test_fixed_timeout_spins_down_and_wakes(self):
        machine = micro_machine()
        trace = make_trace([0.0, 60.0], [1, 2])
        result = run_engine(
            machine, trace, policy=FixedTimeoutPolicy(10.0), duration=100.0
        )
        assert result.spin_down_cycles == 2  # mid-run + trailing idle
        assert result.wake_long_latency == 1
        assert result.long_latency == 1

    def test_sequential_misses_priced_cheap(self):
        machine = micro_machine()
        # Page 6 follows page 5 within the merge window: sequential.
        trace = make_trace([0.0, 0.01], [5, 6])
        result = run_engine(machine, trace, duration=100.0)
        assert result.disk_requests == 1  # merged by the clusterer
        service = SimulationEngine(
            machine, NapMemorySystem(machine.memory, 64 * KB),
            disk_policy=AlwaysOnPolicy(),
        ).service
        # The second miss queues behind the first and streams sequentially.
        first = service.service_time(1)
        second_finish = first + service.service_time(1, sequential=True)
        total = first + (second_finish - 0.01)
        assert result.mean_latency_s * 2 == pytest.approx(total)


class TestWarmup:
    def test_warmup_excluded_from_metrics(self):
        machine = micro_machine(period_s=100.0)
        trace = make_trace([1.0, 150.0], [1, 1])  # miss then hit
        result = run_engine(machine, trace, duration=200.0, warmup=100.0)
        assert result.duration_s == 100.0
        assert result.total_accesses == 1
        assert result.disk_page_accesses == 0  # the miss was in warm-up

    def test_warmup_energy_excluded(self):
        machine = micro_machine(period_s=100.0)
        trace = make_trace([], [])
        result = run_engine(machine, trace, duration=200.0, warmup=100.0)
        nap = machine.memory.mode_power_watts["nap"]
        assert result.memory_energy.static_j == pytest.approx(nap * 4 * 100.0)
        idle_power = machine.disk.mode_power_watts["idle"]
        assert result.disk_energy_j == pytest.approx(idle_power * 100.0)

    def test_warmup_validation(self):
        machine = micro_machine(period_s=100.0)
        trace = make_trace([1.0], [1])
        with pytest.raises(SimulationError):
            run_engine(machine, trace, duration=200.0, warmup=250.0)
        with pytest.raises(SimulationError):
            run_engine(machine, trace, duration=200.0, warmup=50.0)


class TestJointIntegration:
    def test_joint_resizes_memory(self):
        machine = micro_machine(period_s=100.0)
        manager = JointPowerManager(machine)
        memory = NapMemorySystem(machine.memory, manager.memory_bytes)
        engine = SimulationEngine(machine, memory, joint_manager=manager)
        # Two hot pages only: the manager should shrink to one bank.
        times = np.arange(0.0, 400.0, 5.0)
        pages = np.asarray([i % 2 for i in range(times.size)], dtype=np.int64)
        trace = Trace(times=times, pages=pages, page_size=4 * KB)
        result = engine.run(trace, duration_s=400.0)
        assert result.decisions
        assert memory.capacity_bytes == 16 * KB  # one bank
        assert result.periods[-1].memory_bytes == 16 * KB

    def test_joint_requires_resizable_memory(self):
        machine = micro_machine()
        manager = JointPowerManager(machine)
        from repro.memory.system import PowerDownMemorySystem

        memory = PowerDownMemorySystem(machine.memory)
        with pytest.raises(SimulationError):
            SimulationEngine(machine, memory, joint_manager=manager)

    def test_exactly_one_controller(self):
        machine = micro_machine()
        memory = NapMemorySystem(machine.memory, 64 * KB)
        with pytest.raises(SimulationError):
            SimulationEngine(machine, memory)
        with pytest.raises(SimulationError):
            SimulationEngine(
                machine,
                memory,
                disk_policy=AlwaysOnPolicy(),
                joint_manager=JointPowerManager(machine),
            )
