"""Write traffic: dirty tracking, flushing and its spin-down impact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.memory_spec import MemorySpec
from repro.memory.system import NapMemorySystem
from repro.sim.audit import audit_result
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, KB, MB


@pytest.fixture()
def memory():
    spec = MemorySpec(
        installed_bytes=32 * KB,
        bank_bytes=16 * KB,
        chip_bytes=16 * KB,
        page_bytes=4 * KB,
    )
    return NapMemorySystem(spec, 16 * KB)  # 4 pages


class TestDirtyTracking:
    def test_write_marks_dirty(self, memory):
        memory.access_rw(0.0, 1, is_write=True)
        assert memory.dirty_pages == 1
        assert memory.flush_all() == [1]
        assert memory.dirty_pages == 0

    def test_read_does_not_dirty(self, memory):
        memory.access_rw(0.0, 1, is_write=False)
        assert memory.dirty_pages == 0

    def test_rewrite_same_page_stays_one_entry(self, memory):
        memory.access_rw(0.0, 1, True)
        memory.access_rw(1.0, 1, True)
        assert memory.dirty_pages == 1

    def test_eviction_moves_dirty_to_pending(self, memory):
        memory.access_rw(0.0, 0, True)
        for page in (1, 2, 3, 4):  # capacity 4: evicts page 0
            memory.access_rw(1.0, page, False)
        assert memory.dirty_pages == 0
        assert memory.take_pending_flushes() == [0]
        assert memory.take_pending_flushes() == []

    def test_clean_eviction_not_flushed(self, memory):
        for page in (0, 1, 2, 3, 4):
            memory.access_rw(0.0, page, False)
        assert memory.take_pending_flushes() == []

    def test_zero_capacity_write_through(self):
        spec = MemorySpec(
            installed_bytes=16 * KB,
            bank_bytes=16 * KB,
            chip_bytes=16 * KB,
            page_bytes=4 * KB,
        )
        system = NapMemorySystem(spec, 0)
        system.access_rw(0.0, 7, True)
        assert system.take_pending_flushes() == [7]

    def test_resize_spills_dirty(self, memory):
        for page in (0, 1, 2, 3):
            memory.access_rw(0.0, page, True)
        memory.resize(1.0, 0)
        assert sorted(memory.take_pending_flushes()) == [0, 1, 2, 3]
        assert memory.dirty_pages == 0


class TestEngineWritePath:
    def _trace(self, machine, writes, times=None, pages=None):
        n = len(writes)
        return Trace(
            times=np.asarray(times if times is not None else np.arange(n), float),
            pages=np.asarray(pages if pages is not None else np.arange(n) % 8),
            page_size=machine.page_bytes,
            writes=np.asarray(writes, dtype=bool),
        )

    def test_write_miss_does_not_read_disk(self, fast_machine):
        trace = self._trace(fast_machine, [True] * 5)
        result = run_method(
            "ONFM-16GB", trace, fast_machine, duration_s=120.0, audit=True
        )
        assert result.disk_page_accesses == 0  # no reads
        assert result.total_accesses == 5
        # Dirty pages eventually flushed (final sweep at the latest).
        assert result.disk_write_pages == 5

    def test_flush_counts_in_audit(self, fast_machine):
        trace = self._trace(fast_machine, [True, False, True, False, True])
        result = run_method(
            "2TFM-16GB", trace, fast_machine, duration_s=240.0
        )
        assert audit_result(result, fast_machine) == []
        assert result.disk_write_pages >= 1

    def test_periodic_flush_breaks_idleness(self, fast_machine):
        """The classic write-back pathology: a single dirty page plus the
        30-s flusher keeps waking a spun-down disk."""
        times = np.arange(0.0, 400.0, 10.0)
        pages = np.zeros(times.size, dtype=np.int64)
        writes = np.ones(times.size, dtype=bool)
        dirty_trace = Trace(
            times=times, pages=pages,
            page_size=fast_machine.page_bytes, writes=writes,
        )
        clean_trace = Trace(
            times=times, pages=pages, page_size=fast_machine.page_bytes,
        )
        dirty = run_method(
            "2TFM-16GB", dirty_trace, fast_machine, duration_s=480.0,
            warm_start=False,
        )
        clean = run_method(
            "2TFM-16GB", clean_trace, fast_machine, duration_s=480.0,
            warm_start=False,
        )
        # Reads hit the cache after the first fetch: the clean disk spins
        # down once and sleeps.  The dirty run keeps flushing.
        assert dirty.disk_write_pages > 5
        assert dirty.spin_down_cycles > clean.spin_down_cycles
        assert dirty.disk_energy_j > clean.disk_energy_j

    def test_generated_write_workload_end_to_end(self, fast_machine):
        trace = generate_trace(
            dataset_bytes=2 * GB,
            data_rate=20 * MB,
            duration_s=480.0,
            page_size=fast_machine.page_bytes,
            file_scale=fast_machine.scale,
            write_fraction=0.2,
            seed=66,
        )
        assert 0.05 < trace.write_fraction < 0.6
        result = run_method(
            "JOINT", trace, fast_machine, duration_s=480.0, audit=True
        )
        assert result.disk_write_pages > 0

    def test_read_only_trace_unaffected(self, fast_machine, small_trace):
        result = run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=480.0, audit=True
        )
        assert result.disk_write_pages == 0


class TestFlushBoundaryOrdering:
    def test_quiet_gap_spanning_boundary_with_dirty_pages(self, fast_machine):
        """Regression: with dirty pages and a gap longer than a period,
        the pending flushes beyond the boundary must not be submitted
        before the boundary's disk advance (time must stay monotone)."""
        trace = Trace(
            times=np.array([1.0, 300.0]),  # gap spans the 120-s boundaries
            pages=np.array([0, 1], dtype=np.int64),
            page_size=fast_machine.page_bytes,
            writes=np.array([True, True]),
        )
        result = run_method(
            "2TFM-16GB",
            trace,
            fast_machine,
            duration_s=480.0,
            warm_start=False,
            audit=True,
        )
        # Page 0's flush fired at the first 30-s sweep; page 1's at the
        # final sweep or a later one.
        assert result.disk_write_pages == 2

    def test_flush_events_fire_in_the_idle_tail(self, fast_machine):
        """A write early in the run flushes at the next 30-s sweep even
        when no further access arrives."""
        trace = Trace(
            times=np.array([1.0]),
            pages=np.array([0], dtype=np.int64),
            page_size=fast_machine.page_bytes,
            writes=np.array([True]),
        )
        result = run_method(
            "ONFM-16GB",
            trace,
            fast_machine,
            duration_s=240.0,
            warm_start=False,
            audit=True,
        )
        assert result.disk_write_pages == 1
        # The flush happened at t=30, so the disk's idle tail runs from
        # shortly after that to the end -- not from t=240.
        assert result.disk_energy.idle_s > 200.0
