"""Replay-mode and regret reporting across a mixed campaign.

One campaign, four methods, four replay loops: JOINT takes the epoch
kernel, a fixed-timeout method batches its misses in the missrun
kernel, a request-aware PT method takes the vectorized kernel, and the
disable-model DS method replays hit runs from live bank state in the
disable mode.  The campaign report must say so -- and, when tasks opt into regret scoring,
carry the oracle fields end-to-end through the JSON payloads.
"""

from __future__ import annotations

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.tasks import SimSummary, SimTask, WorkloadSpec
from repro.config.machine import scaled_machine
from repro.policies.registry import parse_method


@pytest.fixture(scope="module")
def small_machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def workload(small_machine):
    return WorkloadSpec.for_machine(
        small_machine,
        dataset_gb=4.0,
        rate_mb=40.0,
        popularity=0.1,
        duration_s=600.0,
        seed=5,
    )


def _task(name, machine, workload, regret=False):
    return SimTask(
        method=parse_method(name),
        machine=machine,
        workload=workload,
        duration_s=workload.duration_s,
        regret=regret,
    )


@pytest.fixture(scope="module")
def mixed_report(small_machine, workload):
    tasks = [
        _task("JOINT", small_machine, workload, regret=True),
        _task("2TFM-8GB", small_machine, workload, regret=True),
        _task("PTFM-8GB", small_machine, workload, regret=True),
        _task("2TDS-128GB", small_machine, workload, regret=True),
    ]
    return run_campaign(tasks)


class TestReplayModeReporting:
    def test_each_loop_counted_once(self, mixed_report):
        assert mixed_report.ok
        assert mixed_report.replay_mode_counts() == {
            "disable": 1,
            "epoch": 1,
            "missrun": 1,
            "vectorized": 1,
        }

    def test_render_summary_lists_modes(self, mixed_report):
        text = mixed_report.render_summary()
        assert "replay modes" in text
        assert "epoch=1" in text
        assert "disable=1" in text
        assert "missrun=1" in text
        assert "vectorized=1" in text

    def test_telemetry_carries_modes(self, mixed_report):
        telemetry = mixed_report.telemetry()
        assert telemetry["replay_modes"] == mixed_report.replay_mode_counts()


class TestRegretReporting:
    def test_payloads_carry_oracle_fields(self, mixed_report):
        for payload in mixed_report.payloads():
            summary = SimSummary.from_payload(payload["summary"])
            assert summary.opt_misses is not None
            assert summary.excess_misses is not None
            assert summary.excess_misses >= 0
            assert summary.opt_misses + summary.excess_misses == (
                summary.disk_page_accesses
            )
            assert summary.energy_ratio is not None
            assert summary.energy_ratio >= 1.0
            assert summary.energy_lower_bound_j is not None
            assert summary.energy_lower_bound_j > 0

    def test_campaign_aggregate(self, mixed_report):
        regret = mixed_report.regret_summary()
        assert regret is not None
        assert regret["runs"] == 4
        assert regret["mean_energy_ratio"] >= 1.0
        assert regret["max_energy_ratio"] >= regret["mean_energy_ratio"]
        assert regret["excess_misses"] >= 0
        assert "regret" in mixed_report.render_summary()
        assert mixed_report.telemetry()["regret"] == regret

    def test_absent_without_opt_in(self, small_machine, workload):
        report = run_campaign([_task("ALWAYS-ON", small_machine, workload)])
        assert report.ok
        assert report.regret_summary() is None
        assert "regret" not in report.render_summary()
        payload = report.payloads()[0]
        summary = SimSummary.from_payload(payload["summary"])
        assert summary.opt_misses is None
        assert summary.energy_ratio is None


class TestCacheKeyStability:
    def test_regret_flag_absent_from_legacy_payloads(
        self, small_machine, workload
    ):
        plain = _task("JOINT", small_machine, workload)
        scored = _task("JOINT", small_machine, workload, regret=True)
        assert "regret" not in plain.payload()
        assert scored.payload()["regret"] is True
        # Pre-regret cache entries stay addressable; opting in re-runs.
        assert plain.key != scored.key

    def test_pre_regret_summary_payloads_still_load(self):
        payload = {
            "label": "JOINT",
            "duration_s": 600.0,
            "memory_energy_j": 1.0,
            "disk_energy_j": 2.0,
            "total_accesses": 10,
            "disk_page_accesses": 4,
            "disk_requests": 4,
            "disk_write_pages": 0,
            "mean_latency_s": 0.001,
            "long_latency": 0,
            "wake_long_latency": 0,
            "spin_down_cycles": 1,
            "utilization": 0.5,
            "decision_memory_bytes": [],
        }
        summary = SimSummary.from_payload(payload)
        assert summary.replay_mode == "scalar"
        assert summary.opt_misses is None
        assert summary.energy_ratio is None
