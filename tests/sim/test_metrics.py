"""Metrics collection."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector


@pytest.fixture()
def metrics():
    return MetricsCollector(period_s=100.0)


class TestCounting:
    def test_hits_and_misses(self, metrics):
        metrics.on_hit(1.0)
        metrics.on_miss(2.0, 0.05, 0.0)
        assert metrics.total_accesses == 2
        assert metrics.total_disk_pages == 1

    def test_long_latency_threshold(self, metrics):
        metrics.on_miss(1.0, 0.4, 0.0)
        metrics.on_miss(2.0, 0.6, 0.0)
        assert metrics.total_long_latency == 1

    def test_wake_attribution(self, metrics):
        metrics.on_miss(1.0, 9.0, 8.0)  # woke the disk
        metrics.on_miss(2.0, 0.9, 0.0)  # queueing only
        assert metrics.total_long_latency == 2
        assert metrics.total_wake_long_latency == 1

    def test_mean_latency_over_all_accesses(self, metrics):
        # Paper semantics: hits are free but count in the denominator.
        metrics.on_hit(1.0)
        metrics.on_miss(2.0, 0.1, 0.0)
        assert metrics.mean_latency_s == pytest.approx(0.05)

    def test_mean_latency_empty(self, metrics):
        assert metrics.mean_latency_s == 0.0

    def test_avg_request_pages(self, metrics):
        for t in (1.0, 2.0, 3.0, 4.0):
            metrics.on_miss(t, 0.01, 0.0)
        metrics.on_request()
        metrics.on_request()
        assert metrics.avg_request_pages == pytest.approx(2.0)

    def test_avg_request_pages_defaults_to_one(self, metrics):
        assert metrics.avg_request_pages == 1.0


class TestPeriods:
    def test_close_period_snapshots(self, metrics):
        metrics.on_miss(10.0, 0.7, 0.0)
        closed = metrics.close_period(100.0, memory_bytes=42, timeout_s=11.7)
        assert closed.disk_page_accesses == 1
        assert closed.long_latency == 1
        assert closed.memory_bytes == 42
        assert closed.timeout_s == 11.7
        assert closed.duration_s == 100.0
        assert metrics.periods == [closed]

    def test_idle_lengths_per_period(self, metrics):
        metrics.on_miss(10.0, 0.01, 0.0)
        metrics.on_miss(30.0, 0.01, 0.0)
        closed = metrics.close_period(100.0)
        assert closed.mean_idle_s == pytest.approx(20.0)

    def test_aggregation_window_respected(self):
        metrics = MetricsCollector(period_s=100.0, aggregation_window_s=1.0)
        metrics.on_miss(10.0, 0.01, 0.0)
        metrics.on_miss(10.5, 0.01, 0.0)  # gap 0.5 < 1.0: filtered
        metrics.on_miss(30.0, 0.01, 0.0)
        closed = metrics.close_period(100.0)
        assert closed.mean_idle_s == pytest.approx(19.5)

    def test_next_period_index_advances(self, metrics):
        metrics.close_period(100.0)
        second = metrics.close_period(200.0)
        assert second.index == 1
        assert second.start_s == 100.0

    def test_long_latency_per_s(self, metrics):
        metrics.on_miss(1.0, 0.9, 0.0)
        closed = metrics.close_period(100.0)
        assert closed.long_latency_per_s == pytest.approx(0.01)

    def test_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            MetricsCollector(period_s=0.0)
