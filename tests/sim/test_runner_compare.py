"""run_method / compare_methods on a small scaled workload."""

from __future__ import annotations

import pytest

from repro.sim.compare import compare_methods
from repro.sim.runner import run_method
from repro.units import GB


@pytest.fixture(scope="module")
def comparison(fast_machine, small_trace):
    return compare_methods(
        small_trace,
        fast_machine,
        methods=["JOINT", "2TFM-8GB", "2TPD-128GB", "2TDS-128GB", "ALWAYS-ON"],
        duration_s=600.0,
        warmup_s=120.0,
    )


class TestRunMethod:
    def test_each_method_kind_runs(self, fast_machine, small_trace):
        for name in ("ALWAYS-ON", "2TFM-8GB", "ADFM-8GB", "JOINT"):
            result = run_method(
                name, small_trace, fast_machine, duration_s=360.0, warmup_s=120.0
            )
            assert result.label == name
            assert result.duration_s == pytest.approx(240.0)
            assert result.total_energy_j > 0

    def test_joint_produces_decisions(self, fast_machine, small_trace):
        result = run_method(
            "JOINT", small_trace, fast_machine, duration_s=360.0, warmup_s=120.0
        )
        assert len(result.decisions) == 3
        assert result.decisions[0].memory_bytes <= 128 * GB

    def test_oracle_two_pass(self, fast_machine, small_trace):
        oracle = run_method(
            "ORFM-128GB", small_trace, fast_machine, duration_s=360.0
        )
        always = run_method(
            "ALWAYS-ON", small_trace, fast_machine, duration_s=360.0
        )
        # Identical miss streams; the oracle may only save disk energy.
        assert oracle.disk_page_accesses == always.disk_page_accesses
        assert oracle.disk_energy_j <= always.disk_energy_j + 1e-6

    def test_cold_start_option(self, fast_machine, small_trace):
        warm = run_method(
            "ALWAYS-ON", small_trace, fast_machine, duration_s=360.0
        )
        cold = run_method(
            "ALWAYS-ON",
            small_trace,
            fast_machine,
            duration_s=360.0,
            warm_start=False,
        )
        assert cold.disk_page_accesses > warm.disk_page_accesses


class TestCompare:
    def test_all_methods_present(self, comparison):
        assert set(comparison.labels()) == {
            "JOINT",
            "2TFM-8GB",
            "2TPD-128GB",
            "2TDS-128GB",
            "ALWAYS-ON",
        }

    def test_baseline_normalisation(self, comparison):
        normalized = comparison.normalized_by_label()
        base = normalized["ALWAYS-ON"]
        assert base.total_energy == pytest.approx(1.0)
        assert base.disk_energy == pytest.approx(1.0)
        assert base.memory_energy == pytest.approx(1.0)

    def test_everyone_beats_always_on(self, comparison):
        normalized = comparison.normalized_by_label()
        for label, norm in normalized.items():
            if label != "ALWAYS-ON":
                assert norm.total_energy < 1.0, label

    def test_pd_memory_energy_about_a_third(self, comparison):
        # Power-down banks draw 3.5/10.5 of nap power (paper: >30%).
        norm = comparison.normalized_by_label()["2TPD-128GB"]
        assert norm.memory_energy == pytest.approx(0.35, abs=0.05)

    def test_getitem(self, comparison):
        assert comparison["JOINT"].label == "JOINT"

    def test_missing_baseline_raises(self, fast_machine, small_trace):
        from repro.errors import SimulationError
        from repro.sim.compare import ComparisonResult

        empty = ComparisonResult()
        with pytest.raises(SimulationError):
            _ = empty.baseline
