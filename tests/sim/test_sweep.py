"""Generic parameter sweeps."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.sim.sweep import sweep


class TestSweep:
    def test_grid_cross_product(self, fast_machine):
        rows = sweep(
            fast_machine,
            methods=["JOINT"],
            grid={"dataset_gb": [2, 4], "rate_mb": [20]},
            duration_s=240.0,
            defaults={"popularity": 0.2},
        )
        # 2 points x (JOINT + auto-added ALWAYS-ON).
        assert len(rows) == 4
        assert {row["dataset_gb"] for row in rows} == {2, 4}
        assert all(row["rate_mb"] == 20 for row in rows)

    def test_baseline_auto_added_and_normalised(self, fast_machine):
        rows = sweep(
            fast_machine,
            methods=["2TFM-8GB"],
            grid={"dataset_gb": [2]},
            duration_s=240.0,
        )
        base = [row for row in rows if row["method"] == "ALWAYS-ON"]
        assert len(base) == 1
        assert base[0]["total_energy"] == pytest.approx(1.0)

    def test_rows_render(self, fast_machine):
        from repro.experiments.formatting import render_table

        rows = sweep(
            fast_machine,
            methods=["2TFM-8GB"],
            grid={"rate_mb": [10]},
            duration_s=240.0,
            defaults={"dataset_gb": 2.0},
        )
        text = render_table(rows)
        assert "total_energy" in text

    def test_unknown_parameter_rejected(self, fast_machine):
        with pytest.raises(ReproError, match="unknown sweep parameters"):
            sweep(
                fast_machine,
                methods=["JOINT"],
                grid={"bogus": [1]},
                duration_s=240.0,
            )

    def test_empty_grid_rejected(self, fast_machine):
        with pytest.raises(ReproError):
            sweep(fast_machine, methods=["JOINT"], grid={}, duration_s=240.0)

    def test_write_fraction_sweep(self, fast_machine):
        rows = sweep(
            fast_machine,
            methods=["2TFM-8GB"],
            grid={"write_fraction": [0.0, 0.3]},
            duration_s=240.0,
            defaults={"dataset_gb": 2.0, "rate_mb": 20.0},
        )
        assert {row["write_fraction"] for row in rows} == {0.0, 0.3}


class TestGridValidation:
    def test_duplicate_values_deduplicated(self, fast_machine):
        kwargs = dict(
            methods=["JOINT"],
            duration_s=240.0,
            defaults={"dataset_gb": 2.0, "popularity": 0.2},
        )
        deduped = sweep(
            fast_machine, grid={"rate_mb": [20, 20, 20, 50]}, **kwargs
        )
        clean = sweep(fast_machine, grid={"rate_mb": [20, 50]}, **kwargs)
        assert deduped == clean

    def test_dedup_keeps_first_occurrence_order(self, fast_machine):
        rows = sweep(
            fast_machine,
            methods=["JOINT"],
            grid={"rate_mb": [50, 20, 50]},
            duration_s=240.0,
            defaults={"dataset_gb": 2.0, "popularity": 0.2},
        )
        assert [row["rate_mb"] for row in rows[::2]] == [50, 20]

    @pytest.mark.parametrize(
        "grid, message",
        [
            ({"dataset_gb": [4.0, 0.0]}, "must be positive"),
            ({"dataset_gb": [-2.0]}, "must be positive"),
            ({"rate_mb": [float("nan")]}, "non-finite"),
            ({"rate_mb": [float("inf")]}, "non-finite"),
            ({"popularity": [0.0]}, "must be positive"),
            ({"write_fraction": [1.5]}, r"in \[0, 1\]"),
            ({"write_fraction": [-0.1]}, r"in \[0, 1\]"),
            ({"dataset_gb": []}, "no values"),
        ],
    )
    def test_bad_values_rejected(self, fast_machine, grid, message):
        with pytest.raises(ReproError, match=message):
            sweep(fast_machine, methods=["JOINT"], grid=grid, duration_s=240.0)


class TestSweepCampaign:
    def test_jobs_and_cache_match_serial_rows(self, fast_machine, tmp_path):
        from repro.campaign.cache import ResultCache

        kwargs = dict(
            methods=["JOINT"],
            grid={"dataset_gb": [2.0, 4.0]},
            duration_s=240.0,
            defaults={"rate_mb": 20.0, "popularity": 0.2},
        )
        serial = sweep(fast_machine, **kwargs)
        cache = ResultCache(tmp_path / "cache")
        parallel = sweep(fast_machine, jobs=2, cache=cache, **kwargs)
        warm = sweep(fast_machine, jobs=1, cache=cache, **kwargs)
        assert parallel == serial
        assert warm == serial
