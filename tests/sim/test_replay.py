"""Reproducible run specs."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.sim.replay import RunSpec, fingerprint

SMALL = dict(
    method="2TFM-8GB",
    dataset_gb=2.0,
    rate_mb=20.0,
    periods=2,
    warmup_periods=1,
    period_s=120.0,
    seed=9,
)


class TestDeterminism:
    def test_two_executions_identical(self):
        spec = RunSpec(**SMALL)
        first = fingerprint(spec.execute())
        second = fingerprint(spec.execute())
        assert first == second

    def test_seed_changes_result(self):
        base = fingerprint(RunSpec(**SMALL).execute())
        other = fingerprint(RunSpec(**{**SMALL, "seed": 10}).execute())
        assert base != other

    def test_joint_spec_executes(self):
        spec = RunSpec(**{**SMALL, "method": "JOINT"})
        result = spec.execute()
        assert result.decisions


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        spec = RunSpec(**SMALL, notes={"why": "regression anchor"})
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = RunSpec.load(path)
        assert loaded == spec

    def test_saved_spec_reproduces_result(self, tmp_path):
        spec = RunSpec(**SMALL)
        path = tmp_path / "spec.json"
        spec.save(path)
        direct = fingerprint(spec.execute())
        replayed = fingerprint(RunSpec.load(path).execute())
        assert direct == replayed

    def test_version_and_field_validation(self, tmp_path):
        with pytest.raises(ReproError):
            RunSpec.from_dict({"method": "JOINT", "version": 99})
        with pytest.raises(ReproError):
            RunSpec.from_dict({"method": "JOINT", "bogus": 1})
        with pytest.raises(ReproError):
            RunSpec.load(tmp_path / "missing.json")

    def test_derived_quantities(self):
        spec = RunSpec(**SMALL)
        assert spec.duration_s == 360.0
        assert spec.warmup_s == 120.0
        assert spec.machine().manager.period_s == 120.0
