"""Vectorized/epoch replay kernels: bit-identity with the scalar loop.

The fast paths promise the *same floating-point operations* as the
per-access reference loop, so every comparison here is exact equality --
no tolerances anywhere.  Joint-manager runs take the ``"epoch"`` mode
(decisions included in the comparison), fixed-capacity nap/power-down
runs take ``"missrun"`` under a request-blind policy (2T, always-on)
and ``"vectorized"`` under a request-aware one (PT/EA/AD/OR),
write-carrying traces take ``"writes"``, the disable memory model takes
``"disable"``, and the remaining fallback conditions (joint write-back
runs, the ``$REPRO_KERNELS`` kill switch) must route through the scalar
loop and say so in ``SimResult.replay_mode``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cache.profile import build_profile, clear_memo
from repro.config.machine import scaled_machine
from repro.memory.system import NapMemorySystem
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim import kernels
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, MB
from repro.verify.differential import CHECKS, deep_diff
from repro.verify.strategies import random_case


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=600.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _stripped(result) -> dict:
    d = dataclasses.asdict(result)
    d.pop("replay_mode")
    return d


def _assert_identical(fast, slow, mode=kernels.MODE_VECTORIZED):
    assert fast.replay_mode == mode
    assert slow.replay_mode == kernels.MODE_SCALAR
    for f in dataclasses.fields(fast):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(fast, f.name), getattr(slow, f.name), f.name)
        assert diff is None, diff


class TestIdentity:
    # Request-blind policies (2T, always-on) batch their misses through
    # submit_run ("missrun"); request-aware ones (PT/EA/AD/OR) must see
    # every request individually and stay on "vectorized".
    @pytest.mark.parametrize(
        "method,mode",
        [
            ("2TFM-8GB", kernels.MODE_MISSRUN),
            ("2TFM-16GB", kernels.MODE_MISSRUN),
            ("ALWAYS-ON", kernels.MODE_MISSRUN),
            ("PTFM-16GB", kernels.MODE_VECTORIZED),
            ("EAFM-8GB", kernels.MODE_VECTORIZED),
            ("ADFM-16GB", kernels.MODE_VECTORIZED),
            ("ORFM-16GB", kernels.MODE_VECTORIZED),
            ("2TNAP", kernels.MODE_MISSRUN),
            ("2TPD", kernels.MODE_MISSRUN),
        ],
    )
    def test_run_method_identical(self, method, mode, trace, machine):
        fast = run_method(method, trace, machine, audit=True, profile="auto")
        slow = run_method(method, trace, machine, audit=True, profile=None)
        _assert_identical(fast, slow, mode=mode)

    def test_cold_start_identical(self, trace, machine):
        fast = run_method(
            "2TFM-16GB", trace, machine, warm_start=False, profile="auto"
        )
        slow = run_method(
            "2TFM-16GB", trace, machine, warm_start=False, profile=None
        )
        _assert_identical(fast, slow, mode=kernels.MODE_MISSRUN)

    def test_warmup_and_duration_clipping(self, trace, machine):
        period = machine.manager.period_s
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("2TFM-16GB", trace, machine, profile="auto", **kwargs)
        slow = run_method("2TFM-16GB", trace, machine, profile=None, **kwargs)
        _assert_identical(fast, slow, mode=kernels.MODE_MISSRUN)

    def test_seeded_verify_corpus(self):
        # The differential check compares every SimResult field exactly;
        # its fuzz corpus exercises bursts, sequential scans and loops.
        for seed in range(20):
            assert CHECKS["kernels"](random_case(seed)) is None

    def test_zero_capacity_memory(self, machine):
        # Everything misses; the hit kernels never fire and the whole
        # trace replays as boundary-split miss runs, which must still
        # agree exactly.
        rng = np.random.default_rng(11)
        small = Trace(
            times=np.sort(rng.uniform(0.0, 120.0, 300)),
            pages=rng.integers(0, 50, 300).astype(np.int64),
            page_size=machine.page_bytes,
        )
        profile = build_profile(small, warm_start=False)

        def run(prof):
            memory = NapMemorySystem(machine.memory, 0)
            engine = SimulationEngine(
                machine, memory, disk_policy=FixedTimeoutPolicy(1.0)
            )
            return engine.run(small, profile=prof)

        _assert_identical(run(profile), run(None), mode=kernels.MODE_MISSRUN)


class TestEpochIdentity:
    """Joint-manager runs through the epoch-segmented fast path.

    The decision history (every ``PeriodDecision``, including each
    candidate evaluation's prediction arrays and Pareto fit) is part of
    the exact comparison -- the epoch kernel feeds the predictor from
    profile depths instead of the manager's live tracker, and this is
    where a depth mismatch would surface.
    """

    @pytest.mark.parametrize(
        "method", ["JOINT", "JOINT-NC", "JOINT-MEM", "JOINT-TO"]
    )
    def test_joint_methods_identical(self, method, trace, machine):
        fast = run_method(method, trace, machine, profile="auto")
        slow = run_method(method, trace, machine, profile=None)
        assert fast.decisions, "expected at least one period decision"
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_cold_start_identical(self, trace, machine):
        fast = run_method("JOINT", trace, machine, warm_start=False, profile="auto")
        slow = run_method("JOINT", trace, machine, warm_start=False, profile=None)
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_warmup_and_multi_period(self, trace, machine):
        period = machine.manager.period_s
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("JOINT", trace, machine, profile="auto", **kwargs)
        slow = run_method("JOINT", trace, machine, profile=None, **kwargs)
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_seeded_verify_corpus(self):
        # The epoch differential check stretches each fuzz case across
        # several periods and rotates through the joint ablations.
        for seed in range(20):
            assert CHECKS["epoch"](random_case(seed)) is None

    def test_joint_with_writes_stays_scalar(self, machine):
        writeful = generate_trace(
            dataset_bytes=4 * GB,
            data_rate=100 * MB,
            duration_s=300.0,
            page_size=machine.page_bytes,
            seed=5,
            file_scale=machine.scale,
            write_fraction=0.2,
        )
        fast = run_method("JOINT", writeful, machine, profile="auto")
        slow = run_method("JOINT", writeful, machine, profile=None)
        assert fast.replay_mode == kernels.MODE_SCALAR
        _assert_identical(fast, slow, mode=kernels.MODE_SCALAR)

    def test_kill_switch_forces_scalar(self, trace, machine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        result = run_method("JOINT", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR


def _write_trace(machine, seed=5, duration_s=300.0, write_fraction=0.2):
    writeful = generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=duration_s,
        page_size=machine.page_bytes,
        seed=seed,
        file_scale=machine.scale,
        write_fraction=write_fraction,
    )
    assert writeful.writes is not None and writeful.writes.any()
    return writeful


class TestWriteIdentity:
    """Write-carrying traces through the ``"writes"`` fast path.

    Write-allocate means the LRU evolves exactly as in the read-only
    replay, so the profile's hit mask stays valid; what the fast path
    must get right is splitting hit runs at periodic flush sweeps so
    each sweep sees precisely the dirty pages marked before it.
    """

    @pytest.mark.parametrize(
        "method", ["2TFM-8GB", "2TFM-16GB", "ALWAYS-ON", "2TNAP", "2TPD"]
    )
    def test_run_method_identical(self, method, machine):
        writeful = _write_trace(machine)
        fast = run_method(method, writeful, machine, audit=True, profile="auto")
        slow = run_method(method, writeful, machine, audit=True, profile=None)
        _assert_identical(fast, slow, mode=kernels.MODE_WRITES)

    def test_cold_start_identical(self, machine):
        writeful = _write_trace(machine, seed=7)
        fast = run_method(
            "2TFM-16GB", writeful, machine, warm_start=False, profile="auto"
        )
        slow = run_method(
            "2TFM-16GB", writeful, machine, warm_start=False, profile=None
        )
        _assert_identical(fast, slow, mode=kernels.MODE_WRITES)

    def test_warmup_and_duration_clipping(self, machine):
        period = machine.manager.period_s
        writeful = _write_trace(machine, seed=9, duration_s=4 * period)
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("2TFM-16GB", writeful, machine, profile="auto", **kwargs)
        slow = run_method("2TFM-16GB", writeful, machine, profile=None, **kwargs)
        _assert_identical(fast, slow, mode=kernels.MODE_WRITES)

    def test_write_heavy_trace(self, machine):
        writeful = _write_trace(machine, seed=13, write_fraction=0.8)
        fast = run_method("2TFM-16GB", writeful, machine, audit=True, profile="auto")
        slow = run_method("2TFM-16GB", writeful, machine, audit=True, profile=None)
        assert fast.disk_write_pages > 0
        _assert_identical(fast, slow, mode=kernels.MODE_WRITES)

    def test_seeded_verify_corpus(self):
        # Fuzzes flush intervals, nap/pd models, warm/cold starts and
        # write densities; every SimResult field compared exactly.
        for seed in range(20):
            assert CHECKS["writes"](random_case(seed)) is None


class TestDisableIdentity:
    """The disable model (2TDS) through the ``"disable"`` fast path.

    Chip invalidations make 2TDS hit/miss outcomes unpredictable from a
    stack-distance profile, so its fast path replays hit runs from the
    *live* bank state instead -- an access is a guaranteed hit iff its
    page's bank is resident and still inside the timeout window.  The
    disable mode needs no profile, so ``profile=None`` does not force
    the scalar loop; the reference legs use the kill switch instead.
    """

    def test_run_method_identical(self, trace, machine, monkeypatch):
        fast = run_method("2TDS", trace, machine, audit=True, profile="auto")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        slow = run_method("2TDS", trace, machine, audit=True, profile="auto")
        _assert_identical(fast, slow, mode=kernels.MODE_DISABLE)

    def test_cold_start_identical(self, trace, machine, monkeypatch):
        fast = run_method("2TDS", trace, machine, warm_start=False, profile="auto")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        slow = run_method("2TDS", trace, machine, warm_start=False, profile="auto")
        _assert_identical(fast, slow, mode=kernels.MODE_DISABLE)

    def test_warmup_and_duration_clipping(self, trace, machine, monkeypatch):
        period = machine.manager.period_s
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("2TDS", trace, machine, profile="auto", **kwargs)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        slow = run_method("2TDS", trace, machine, profile="auto", **kwargs)
        _assert_identical(fast, slow, mode=kernels.MODE_DISABLE)

    def test_disable_with_writes_stays_scalar(self, machine):
        # Flush sweeps interleave with invalidation-driven residency
        # changes, which only the live scalar loop tracks.
        writeful = _write_trace(machine)
        result = run_method("2TDS", writeful, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR

    def test_seeded_verify_corpus(self):
        # The epoch check's second leg fuzzes 2TDS capacities/timeouts
        # against the kill-switch-forced scalar loop.
        for seed in range(20):
            assert CHECKS["epoch"](random_case(seed)) is None


class TestFallbacks:
    def test_per_bank_memory_vectorizes(self, trace, machine):
        # PD retains data across power-down, so its hit/miss stream is
        # profile-predictable; under the request-blind 2T policy it now
        # batches misses too.
        result = run_method("2TPD", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_MISSRUN

    def test_kill_switch_forces_scalar(self, trace, machine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        result = run_method("2TFM-16GB", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR
        # The disable mode bypasses the profile gate, so the kill switch
        # must short-circuit before the memory-model dispatch.
        result = run_method("2TDS", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR

    def test_explicit_none_forces_scalar(self, trace, machine):
        result = run_method("2TFM-16GB", trace, machine, profile=None)
        assert result.replay_mode == kernels.MODE_SCALAR


class TestFastPathReason:
    def test_reasons(self, trace, machine):
        memory = NapMemorySystem(machine.memory, machine.memory.installed_bytes)
        engine = SimulationEngine(
            machine, memory, disk_policy=FixedTimeoutPolicy(1.0)
        )
        assert kernels.fast_path_reason(engine, trace, None) is not None
        profile = build_profile(trace)
        assert kernels.fast_path_reason(engine, trace, profile) is None
        short = trace.slice_time(0.0, trace.duration_s / 2)
        assert kernels.fast_path_reason(engine, short, profile) is not None
