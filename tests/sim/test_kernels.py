"""Vectorized/epoch replay kernels: bit-identity with the scalar loop.

The fast paths promise the *same floating-point operations* as the
per-access reference loop, so every comparison here is exact equality --
no tolerances anywhere.  Joint-manager runs take the ``"epoch"`` mode
(decisions included in the comparison), fixed-capacity nap/power-down
runs take ``"vectorized"``, and the remaining fallback conditions (write
traces, the disable memory model, the ``$REPRO_KERNELS`` kill switch)
must route through the scalar loop and say so in
``SimResult.replay_mode``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cache.profile import build_profile, clear_memo
from repro.config.machine import scaled_machine
from repro.memory.system import NapMemorySystem
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim import kernels
from repro.sim.engine import SimulationEngine
from repro.sim.runner import run_method
from repro.traces.specweb import generate_trace
from repro.traces.trace import Trace
from repro.units import GB, MB
from repro.verify.differential import CHECKS, deep_diff
from repro.verify.strategies import random_case


@pytest.fixture(scope="module")
def machine():
    return scaled_machine(1024)


@pytest.fixture(scope="module")
def trace(machine):
    return generate_trace(
        dataset_bytes=4 * GB,
        data_rate=100 * MB,
        duration_s=600.0,
        page_size=machine.page_bytes,
        seed=3,
        file_scale=machine.scale,
    )


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _stripped(result) -> dict:
    d = dataclasses.asdict(result)
    d.pop("replay_mode")
    return d


def _assert_identical(fast, slow, mode=kernels.MODE_VECTORIZED):
    assert fast.replay_mode == mode
    assert slow.replay_mode == kernels.MODE_SCALAR
    for f in dataclasses.fields(fast):
        if f.name == "replay_mode":
            continue
        diff = deep_diff(getattr(fast, f.name), getattr(slow, f.name), f.name)
        assert diff is None, diff


class TestIdentity:
    @pytest.mark.parametrize(
        "method",
        ["2TFM-8GB", "2TFM-16GB", "ALWAYS-ON", "PTFM-16GB", "EAFM-8GB",
         "ADFM-16GB", "ORFM-16GB", "2TNAP", "2TPD"],
    )
    def test_run_method_identical(self, method, trace, machine):
        fast = run_method(method, trace, machine, audit=True, profile="auto")
        slow = run_method(method, trace, machine, audit=True, profile=None)
        _assert_identical(fast, slow)

    def test_cold_start_identical(self, trace, machine):
        fast = run_method(
            "2TFM-16GB", trace, machine, warm_start=False, profile="auto"
        )
        slow = run_method(
            "2TFM-16GB", trace, machine, warm_start=False, profile=None
        )
        _assert_identical(fast, slow)

    def test_warmup_and_duration_clipping(self, trace, machine):
        period = machine.manager.period_s
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("2TFM-16GB", trace, machine, profile="auto", **kwargs)
        slow = run_method("2TFM-16GB", trace, machine, profile=None, **kwargs)
        _assert_identical(fast, slow)

    def test_seeded_verify_corpus(self):
        # The differential check compares every SimResult field exactly;
        # its fuzz corpus exercises bursts, sequential scans and loops.
        for seed in range(20):
            assert CHECKS["kernels"](random_case(seed)) is None

    def test_zero_capacity_memory(self, machine):
        # Everything misses; the hit kernels never fire but segmentation
        # around the all-miss stream must still agree exactly.
        rng = np.random.default_rng(11)
        small = Trace(
            times=np.sort(rng.uniform(0.0, 120.0, 300)),
            pages=rng.integers(0, 50, 300).astype(np.int64),
            page_size=machine.page_bytes,
        )
        profile = build_profile(small, warm_start=False)

        def run(prof):
            memory = NapMemorySystem(machine.memory, 0)
            engine = SimulationEngine(
                machine, memory, disk_policy=FixedTimeoutPolicy(1.0)
            )
            return engine.run(small, profile=prof)

        _assert_identical(run(profile), run(None))


class TestEpochIdentity:
    """Joint-manager runs through the epoch-segmented fast path.

    The decision history (every ``PeriodDecision``, including each
    candidate evaluation's prediction arrays and Pareto fit) is part of
    the exact comparison -- the epoch kernel feeds the predictor from
    profile depths instead of the manager's live tracker, and this is
    where a depth mismatch would surface.
    """

    @pytest.mark.parametrize(
        "method", ["JOINT", "JOINT-NC", "JOINT-MEM", "JOINT-TO"]
    )
    def test_joint_methods_identical(self, method, trace, machine):
        fast = run_method(method, trace, machine, profile="auto")
        slow = run_method(method, trace, machine, profile=None)
        assert fast.decisions, "expected at least one period decision"
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_cold_start_identical(self, trace, machine):
        fast = run_method("JOINT", trace, machine, warm_start=False, profile="auto")
        slow = run_method("JOINT", trace, machine, warm_start=False, profile=None)
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_warmup_and_multi_period(self, trace, machine):
        period = machine.manager.period_s
        kwargs = dict(duration_s=3 * period, warmup_s=period)
        fast = run_method("JOINT", trace, machine, profile="auto", **kwargs)
        slow = run_method("JOINT", trace, machine, profile=None, **kwargs)
        _assert_identical(fast, slow, mode=kernels.MODE_EPOCH)

    def test_seeded_verify_corpus(self):
        # The epoch differential check stretches each fuzz case across
        # several periods and rotates through the joint ablations.
        for seed in range(20):
            assert CHECKS["epoch"](random_case(seed)) is None

    def test_joint_with_writes_stays_scalar(self, machine):
        writeful = generate_trace(
            dataset_bytes=4 * GB,
            data_rate=100 * MB,
            duration_s=300.0,
            page_size=machine.page_bytes,
            seed=5,
            file_scale=machine.scale,
            write_fraction=0.2,
        )
        fast = run_method("JOINT", writeful, machine, profile="auto")
        slow = run_method("JOINT", writeful, machine, profile=None)
        assert fast.replay_mode == kernels.MODE_SCALAR
        _assert_identical(fast, slow, mode=kernels.MODE_SCALAR)

    def test_kill_switch_forces_scalar(self, trace, machine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        result = run_method("JOINT", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR


class TestFallbacks:
    def test_disable_memory_stays_scalar(self, trace, machine):
        result = run_method("2TDS", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR

    def test_per_bank_memory_vectorizes(self, trace, machine):
        # PD retains data across power-down, so its hit/miss stream is
        # profile-predictable; since this PR it rides the fast path.
        result = run_method("2TPD", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_VECTORIZED

    def test_write_traces_stay_scalar(self, machine):
        writeful = generate_trace(
            dataset_bytes=4 * GB,
            data_rate=100 * MB,
            duration_s=300.0,
            page_size=machine.page_bytes,
            seed=5,
            file_scale=machine.scale,
            write_fraction=0.2,
        )
        assert writeful.writes is not None and writeful.writes.any()
        result = run_method("2TFM-16GB", writeful, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR

    def test_kill_switch_forces_scalar(self, trace, machine, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        result = run_method("2TFM-16GB", trace, machine, profile="auto")
        assert result.replay_mode == kernels.MODE_SCALAR

    def test_explicit_none_forces_scalar(self, trace, machine):
        result = run_method("2TFM-16GB", trace, machine, profile=None)
        assert result.replay_mode == kernels.MODE_SCALAR


class TestFastPathReason:
    def test_reasons(self, trace, machine):
        memory = NapMemorySystem(machine.memory, machine.memory.installed_bytes)
        engine = SimulationEngine(
            machine, memory, disk_policy=FixedTimeoutPolicy(1.0)
        )
        assert kernels.fast_path_reason(engine, trace, None) is not None
        profile = build_profile(trace)
        assert kernels.fast_path_reason(engine, trace, profile) is None
        short = trace.slice_time(0.0, trace.duration_s / 2)
        assert kernels.fast_path_reason(engine, short, profile) is not None
