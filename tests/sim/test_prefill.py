"""Warm-start page selection."""

from __future__ import annotations

import numpy as np

from repro.sim.prefill import warm_start_pages
from repro.traces.trace import Trace


def make_trace(pages):
    return Trace(
        times=np.arange(len(pages), dtype=float),
        pages=np.asarray(pages, dtype=np.int64),
    )


class TestWarmStart:
    def test_single_touch_pages_excluded(self):
        pages = warm_start_pages(make_trace([1, 2, 3, 2, 3, 3]))
        assert set(pages) == {2, 3}

    def test_hottest_last(self):
        pages = warm_start_pages(make_trace([1, 1, 2, 2, 2, 2, 3, 3, 3]))
        assert pages[-1] == 2
        assert pages[0] == 1

    def test_recency_breaks_count_ties(self):
        # Pages 5 and 7 both accessed twice; 7 more recently.
        pages = warm_start_pages(make_trace([5, 7, 5, 7]))
        assert pages == [5, 7]

    def test_empty_trace(self):
        assert warm_start_pages(make_trace([])) == []

    def test_min_accesses_knob(self):
        trace = make_trace([1, 1, 2, 2, 2])
        assert set(warm_start_pages(trace, min_accesses=3)) == {2}

    def test_all_unique_trace_gives_nothing(self):
        assert warm_start_pages(make_trace([1, 2, 3, 4])) == []
