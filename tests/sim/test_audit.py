"""Result auditing, plus property-based full-pipeline conservation checks."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.audit import assert_clean, audit_result
from repro.sim.runner import run_method
from repro.traces.trace import Trace


class TestAuditOnRealRuns:
    @pytest.mark.parametrize(
        "method",
        ["ALWAYS-ON", "2TFM-8GB", "ADFM-16GB", "2TPD-128GB", "2TDS-128GB", "JOINT"],
    )
    def test_every_method_audits_clean(self, fast_machine, small_trace, method):
        result = run_method(
            method,
            small_trace,
            fast_machine,
            duration_s=600.0,
            warmup_s=120.0,
            audit=True,
        )
        assert audit_result(result, fast_machine) == []

    def test_audit_clean_without_warmup(self, fast_machine, small_trace):
        result = run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=600.0, audit=True
        )
        assert audit_result(result, fast_machine) == []

    def test_audit_clean_on_partial_trailing_period(
        self, fast_machine, small_trace
    ):
        # 300 s is 2.5 of the fast machine's 120-s periods.
        result = run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=300.0
        )
        assert_clean(result, fast_machine)
        assert sum(p.duration_s for p in result.periods) == pytest.approx(300.0)


class TestAuditCatchesCorruption:
    @pytest.fixture()
    def clean(self, fast_machine, small_trace):
        return run_method(
            "2TFM-16GB", small_trace, fast_machine, duration_s=600.0
        )

    def test_detects_missing_disk_time(self, clean, fast_machine):
        broken_energy = clean.disk_energy.snapshot()
        broken_energy.idle_s -= 100.0
        broken = dataclasses.replace(clean, disk_energy=broken_energy)
        assert any("missing time" in p for p in audit_result(broken, fast_machine))

    def test_detects_miss_count_mismatch(self, clean, fast_machine):
        broken = dataclasses.replace(
            clean, disk_page_accesses=clean.disk_page_accesses + 5
        )
        problems = audit_result(broken, fast_machine)
        assert problems  # several invariants fire

    def test_detects_wrong_utilisation(self, clean, fast_machine):
        broken = dataclasses.replace(clean, utilization=0.5)
        assert any("utilisation" in p for p in audit_result(broken, fast_machine))

    def test_assert_clean_raises_with_details(self, clean, fast_machine):
        broken = dataclasses.replace(clean, utilization=0.5)
        with pytest.raises(AssertionError, match="utilisation"):
            assert_clean(broken, fast_machine)


class TestPropertyConservation:
    """Random micro-traces through the full engine always conserve."""

    @given(
        gaps=st.lists(
            st.floats(min_value=0.01, max_value=90.0), min_size=1, max_size=40
        ),
        pages=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=40
        ),
        method=st.sampled_from(
            ["ALWAYS-ON", "2TFM-16GB", "ADFM-16GB", "2TDS-128GB", "JOINT"]
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_trace_audits_clean(self, fast_machine, gaps, pages, method):
        n = min(len(gaps), len(pages))
        times = np.cumsum(np.asarray(gaps[:n]))
        trace = Trace(
            times=times,
            pages=np.asarray(pages[:n], dtype=np.int64),
            page_size=fast_machine.page_bytes,
        )
        result = run_method(
            method, trace, fast_machine, duration_s=480.0, warm_start=False
        )
        assert audit_result(result, fast_machine) == []
