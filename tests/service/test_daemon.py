"""Daemon + client protocol: round trips, concurrency, error paths."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.sessions import SessionRegistry
from repro.sim.runner import run_method


@pytest.fixture()
def daemon(fast_machine):
    with ServiceDaemon(registry=SessionRegistry(fast_machine)) as server:
        yield server


@pytest.fixture()
def client(daemon):
    with ServiceClient(port=daemon.port) as c:
        yield c


def test_ping(client):
    assert client.ping() is True


def test_session_round_trip(client, fast_machine, service_trace):
    duration = 3 * fast_machine.manager.period_s
    offline = run_method(
        "JOINT", service_trace, fast_machine, duration_s=duration,
        warm_start=False,
    )
    sid = client.open_session("JOINT", session_id="web")
    assert sid == "web"
    decisions = []
    n = service_trace.num_accesses
    for lo in range(0, n, 1500):
        hi = min(lo + 1500, n)
        decisions += client.feed(
            sid,
            service_trace.times[lo:hi].tolist(),
            service_trace.pages[lo:hi].tolist(),
        )
    result = client.close(sid, duration)
    # The close result carries the full decision list; the ones that
    # already fired during feeds are its prefix.
    full = result["decisions"]
    assert full[: len(decisions)] == decisions
    assert len(full) == len(offline.decisions)
    assert result["total_energy_j"] == offline.total_energy_j
    assert result["replay_mode"] == "stream-epoch"
    assert [d["timeout_s"] for d in full] == [
        d.timeout_s for d in offline.decisions
    ]


def test_decide_advances_watermark(client, fast_machine):
    sid = client.open_session("JOINT")
    client.feed(sid, [1.0, 2.0], [0, 1])
    assert client.decide(sid, now_s=50.0) == []
    stats = client.stats(sid)
    assert stats["watermark"] == 50.0


def test_stats_rollup(client, service_trace):
    sid = client.open_session("JOINT")
    client.feed(
        sid,
        service_trace.times[:100].tolist(),
        service_trace.pages[:100].tolist(),
    )
    rollup = client.stats()
    assert rollup["open_sessions"] == 1
    assert rollup["accesses_fed"] == 100
    per_session = client.stats(sid)
    assert per_session["accesses_fed"] == 100
    assert per_session["session_id"] == sid


class TestErrors:
    def test_unknown_session(self, client):
        with pytest.raises(ServiceError, match="unknown session"):
            client.feed("ghost", [1.0], [0])

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "frobnicate"})

    def test_bad_method(self, client):
        with pytest.raises(ServiceError):
            client.open_session("NOT-A-METHOD")

    def test_non_monotonic_feed(self, client):
        sid = client.open_session("JOINT")
        with pytest.raises(ServiceError):
            client.feed(sid, [2.0, 1.0], [0, 1])

    def test_error_leaves_connection_usable(self, client):
        with pytest.raises(ServiceError):
            client.feed("ghost", [1.0], [0])
        assert client.ping() is True


def test_eight_concurrent_tenant_connections(daemon, service_trace):
    """Each tenant on its own socket; all streams stay isolated."""
    n = service_trace.num_accesses
    energies = {}
    errors = []

    def tenant(i):
        try:
            with ServiceClient(port=daemon.port) as c:
                sid = c.open_session("JOINT", session_id=f"tenant-{i}")
                for lo in range(0, n, 900):
                    hi = min(lo + 900, n)
                    c.feed(
                        sid,
                        service_trace.times[lo:hi].tolist(),
                        service_trace.pages[lo:hi].tolist(),
                    )
                energies[i] = c.close(sid)["total_energy_j"]
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=tenant, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    assert len(energies) == 8
    assert len(set(energies.values())) == 1

    with ServiceClient(port=daemon.port) as c:
        stats = c.stats()
    assert stats["closed_sessions"] == 8
    assert stats["open_sessions"] == 0


def test_writes_over_the_wire(client, fast_machine, write_trace):
    duration = 3 * fast_machine.manager.period_s
    offline = run_method(
        "JOINT", write_trace, fast_machine, duration_s=duration,
        warm_start=False,
    )
    sid = client.open_session("JOINT", expect_writes=True)
    n = write_trace.num_accesses
    for lo in range(0, n, 2000):
        hi = min(lo + 2000, n)
        client.feed(
            sid,
            write_trace.times[lo:hi].tolist(),
            write_trace.pages[lo:hi].tolist(),
            writes=np.asarray(write_trace.writes[lo:hi]).tolist(),
        )
    result = client.close(sid, duration)
    assert result["total_energy_j"] == offline.total_energy_j
    assert result["disk_write_pages"] == offline.disk_write_pages


def test_shutdown_stops_server(fast_machine):
    daemon = ServiceDaemon(registry=SessionRegistry(fast_machine))
    daemon.start()
    client = ServiceClient(port=daemon.port)
    client.shutdown()
    client.close_connection()
    daemon.stop()  # idempotent after a protocol shutdown
