"""Shared workload for the service tests: short periods, small trace."""

from __future__ import annotations

import pytest

from repro.traces.specweb import generate_trace
from repro.units import GB, MB


@pytest.fixture(scope="package")
def service_trace(fast_machine):
    """Three fast-machine periods of accesses (read-only)."""
    return generate_trace(
        dataset_bytes=1 * GB,
        data_rate=50 * MB,
        duration_s=3 * fast_machine.manager.period_s,
        page_size=fast_machine.page_bytes,
        seed=7,
        file_scale=fast_machine.scale,
    )


@pytest.fixture(scope="package")
def write_trace(fast_machine):
    """Same shape with a write mix (forces the scalar stream path)."""
    return generate_trace(
        dataset_bytes=1 * GB,
        data_rate=50 * MB,
        duration_s=3 * fast_machine.manager.period_s,
        page_size=fast_machine.page_bytes,
        seed=8,
        file_scale=fast_machine.scale,
        write_fraction=0.3,
    )
