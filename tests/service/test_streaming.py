"""Streaming-vs-offline parity: every field bit-identical, any batching.

The matrix crosses methods (joint, joint-no-constraints, fixed timeout),
cold vs warm start, and batch shapes (one shot, per-access with empty
batches, ragged boundaries straddling period edges).  Hypothesis then
fuzzes arbitrary batch splits against the same offline runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.service.streaming import StreamingManager
from repro.sim.prefill import warm_start_pages
from repro.sim.runner import run_method
from repro.verify.differential import deep_diff

METHODS = ["JOINT", "JOINT-NC", "2TNAP"]


def assert_bit_identical(offline, result):
    assert result.replay_mode == f"stream-{offline.replay_mode}"
    for field in dataclasses.fields(result):
        if field.name == "replay_mode":
            continue
        diff = deep_diff(
            getattr(result, field.name),
            getattr(offline, field.name),
            field.name,
        )
        assert diff is None, diff


def stream_in_batches(
    method, machine, trace, duration_s, bounds, prefill=None, writes=False
):
    stream = StreamingManager(
        method, machine, prefill=prefill, expect_writes=writes
    )
    for lo, hi in zip(bounds, bounds[1:]):
        stream.feed(
            trace.times[lo:hi],
            trace.pages[lo:hi],
            None if trace.writes is None else trace.writes[lo:hi],
        )
    return stream.close(duration_s)


@pytest.fixture(scope="module")
def duration(fast_machine):
    return 3 * fast_machine.manager.period_s


@pytest.fixture(scope="module")
def offline_results(fast_machine, service_trace, duration):
    """One offline run per (method, warm) cell, shared by every batching."""
    results = {}
    for method in METHODS:
        for warm in (False, True):
            results[method, warm] = run_method(
                method,
                service_trace,
                fast_machine,
                duration_s=duration,
                warm_start=warm,
            )
    return results


@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("batching", ["whole", "ragged", "straddle"])
def test_parity_matrix(
    method, warm, batching, fast_machine, service_trace, duration,
    offline_results,
):
    n = service_trace.num_accesses
    period = fast_machine.manager.period_s
    if batching == "whole":
        bounds = [0, n]
    elif batching == "ragged":
        rng = np.random.default_rng(hash((method, warm)) & 0xFFFF)
        cuts = np.sort(rng.integers(0, n + 1, size=9)).tolist()
        bounds = [0] + cuts + [n]
    else:
        # Batches that straddle every period boundary by a few accesses:
        # the fire rule must hold decisions back until the witness access
        # past the boundary arrives.
        bounds = [0]
        for k in (1, 2):
            edge = int(np.searchsorted(service_trace.times, k * period))
            bounds += [max(edge - 3, 0), min(edge + 3, n)]
        bounds.append(n)
    prefill = warm_start_pages(service_trace) if warm else None
    result = stream_in_batches(
        method, fast_machine, service_trace, duration, bounds, prefill=prefill
    )
    assert_bit_identical(offline_results[method, warm], result)


def test_per_access_with_empty_batches(
    fast_machine, service_trace, duration, offline_results
):
    """One access per feed, an empty batch between every pair."""
    stream = StreamingManager("JOINT", fast_machine)
    n = service_trace.num_accesses
    step = max(n // 200, 1)  # 200 single-access probes across the trace
    bounds = list(range(0, n, step)) + [n]
    for lo, hi in zip(bounds, bounds[1:]):
        stream.feed(service_trace.times[lo:hi], service_trace.pages[lo:hi])
        assert stream.feed([], []) == []
    assert_bit_identical(
        offline_results["JOINT", False], stream.close(duration)
    )


def test_write_traces_stream_scalar(fast_machine, write_trace, duration):
    offline = run_method(
        "JOINT", write_trace, fast_machine, duration_s=duration,
        warm_start=False,
    )
    assert offline.replay_mode == "scalar"
    n = write_trace.num_accesses
    bounds = [0, n // 3, 2 * n // 3, n]
    result = stream_in_batches(
        "JOINT", fast_machine, write_trace, duration, bounds, writes=True
    )
    assert_bit_identical(offline, result)


def test_warmup_window(fast_machine, service_trace, duration):
    period = fast_machine.manager.period_s
    offline = run_method(
        "JOINT", service_trace, fast_machine, duration_s=duration,
        warmup_s=period, warm_start=False,
    )
    stream = StreamingManager("JOINT", fast_machine, warmup_s=period)
    n = service_trace.num_accesses
    stream.feed(service_trace.times[: n // 2], service_trace.pages[: n // 2])
    stream.feed(service_trace.times[n // 2 :], service_trace.pages[n // 2 :])
    assert_bit_identical(offline, stream.close(duration))


def test_advance_interleaved(fast_machine, service_trace, duration,
                             offline_results):
    """Idle watermark advances between batches change nothing."""
    stream = StreamingManager("JOINT", fast_machine)
    n = service_trace.num_accesses
    bounds = [0, n // 4, n // 2, 3 * n // 4, n]
    for lo, hi in zip(bounds, bounds[1:]):
        stream.feed(service_trace.times[lo:hi], service_trace.pages[lo:hi])
        stream.advance(stream.watermark)
        if hi < n:
            midgap = (stream.watermark + float(service_trace.times[hi])) / 2
            stream.advance(midgap)
    assert_bit_identical(
        offline_results["JOINT", False], stream.close(duration)
    )


def test_default_close_duration(fast_machine, service_trace):
    """close() with no duration rounds the watermark up to a period edge."""
    period = fast_machine.manager.period_s
    expected = max(
        int(np.ceil(float(service_trace.times[-1]) / period)), 1
    ) * period
    offline = run_method(
        "JOINT", service_trace, fast_machine, duration_s=expected,
        warm_start=False,
    )
    stream = StreamingManager("JOINT", fast_machine)
    stream.feed(service_trace.times, service_trace.pages)
    result = stream.close()
    assert result.duration_s == expected
    assert_bit_identical(offline, result)


def test_decisions_accumulate_incrementally(
    fast_machine, service_trace, duration
):
    """feed() returns exactly the new decisions; the prefix never changes."""
    stream = StreamingManager("JOINT", fast_machine)
    n = service_trace.num_accesses
    seen = []
    for lo in range(0, n, 500):
        seen += stream.feed(
            service_trace.times[lo : lo + 500],
            service_trace.pages[lo : lo + 500],
        )
        assert stream.decisions == seen
    result = stream.close(duration)
    assert result.decisions[: len(seen)] == seen
    assert len(result.decisions) == 3


class TestValidation:
    def test_non_monotonic_batch_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        with pytest.raises(SimulationError):
            stream.feed([1.0, 0.5], [0, 1])

    def test_batch_before_watermark_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        stream.feed([5.0], [0])
        with pytest.raises(SimulationError):
            stream.feed([4.0], [1])

    def test_writes_need_expect_writes(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        with pytest.raises(SimulationError):
            stream.feed([1.0], [0], [True])

    def test_oracle_disk_rejected(self, fast_machine):
        with pytest.raises(SimulationError):
            StreamingManager("ORNAP", fast_machine)

    def test_feed_after_close_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        stream.feed([1.0], [0])
        stream.close()
        assert stream.closed
        with pytest.raises(SimulationError):
            stream.feed([2.0], [1])

    def test_advance_backwards_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        stream.advance(10.0)
        with pytest.raises(SimulationError):
            stream.advance(5.0)

    def test_close_before_watermark_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        stream.feed([200.0], [0])
        with pytest.raises(SimulationError):
            stream.close(100.0)

    def test_partial_period_warmup_rejected(self, fast_machine):
        with pytest.raises(SimulationError):
            StreamingManager("JOINT", fast_machine, warmup_s=42.0)


def test_request_blind_method_streams_missrun(fast_machine):
    """2T/always-on tenants batch their misses; request-aware ones don't."""
    assert StreamingManager("2TNAP", fast_machine).replay_mode == (
        "stream-missrun"
    )
    # PT's policy watches every request, so its stream stays vectorized.
    assert StreamingManager("PTNAP", fast_machine).replay_mode == (
        "stream-vectorized"
    )


class TestBackpressure:
    def test_cap_must_be_positive(self, fast_machine):
        with pytest.raises(SimulationError):
            StreamingManager("JOINT", fast_machine, max_buffered=0)

    def test_unbounded_by_default(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine)
        assert stream.max_buffered is None
        stream.feed([float(i) for i in range(64)], list(range(64)))
        assert stream.pending_accesses == 64

    def test_over_capacity_feed_rejected(self, fast_machine):
        stream = StreamingManager("JOINT", fast_machine, max_buffered=4)
        stream.feed([1.0, 2.0, 3.0], [0, 1, 2])
        assert stream.pending_accesses == 3
        with pytest.raises(SimulationError, match="max_buffered"):
            stream.feed([4.0, 5.0], [3, 4])
        # The rejected batch must not have been buffered.
        assert stream.pending_accesses == 3
        # Draining the pending period frees capacity again.
        period = fast_machine.manager.period_s
        stream.advance(2 * period)
        assert stream.pending_accesses == 0
        stream.feed([2 * period + 1.0, 2 * period + 2.0], [3, 4])
        assert stream.pending_accesses == 2


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_fuzz_arbitrary_batch_splits(
    data, fast_machine, service_trace, duration, offline_results
):
    """Any split of the stream into batches yields the offline result."""
    n = service_trace.num_accesses
    cuts = data.draw(
        st.lists(st.integers(0, n), min_size=0, max_size=12).map(sorted)
    )
    bounds = [0] + cuts + [n]
    result = stream_in_batches(
        "JOINT", fast_machine, service_trace, duration, bounds
    )
    assert_bit_identical(offline_results["JOINT", False], result)
