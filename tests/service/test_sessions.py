"""SessionRegistry: lifecycle, idle eviction, rollups, thread-safety."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SimulationError
from repro.service.sessions import SessionRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def registry(fast_machine):
    return SessionRegistry(fast_machine)


def feed_all(registry, sid, trace, batch=1000):
    decisions = []
    for lo in range(0, trace.num_accesses, batch):
        decisions += registry.feed(
            sid, trace.times[lo : lo + batch], trace.pages[lo : lo + batch]
        )
    return decisions


class TestLifecycle:
    def test_auto_session_ids_are_unique(self, registry):
        a = registry.open_session("JOINT")
        b = registry.open_session("2TNAP")
        assert a != b
        assert registry.session_ids() == sorted([a, b])

    def test_explicit_id_and_duplicate_rejected(self, registry):
        registry.open_session("JOINT", session_id="web-1")
        with pytest.raises(SimulationError):
            registry.open_session("JOINT", session_id="web-1")

    def test_unknown_session_errors(self, registry):
        with pytest.raises(SimulationError):
            registry.feed("nope", [1.0], [0])
        with pytest.raises(SimulationError):
            registry.advance("nope", 1.0)
        with pytest.raises(SimulationError):
            registry.close("nope")
        with pytest.raises(SimulationError):
            registry.session_stats("nope")

    def test_close_removes_session(self, registry, service_trace):
        sid = registry.open_session("JOINT")
        feed_all(registry, sid, service_trace)
        result = registry.close(sid)
        assert result.total_energy_j > 0
        assert registry.session_ids() == []
        with pytest.raises(SimulationError):
            registry.close(sid)

    def test_max_sessions_cap(self, fast_machine):
        registry = SessionRegistry(fast_machine, max_sessions=2)
        registry.open_session("JOINT")
        registry.open_session("JOINT")
        with pytest.raises(SimulationError):
            registry.open_session("JOINT")

    def test_per_tenant_machine(self, registry, fast_machine):
        sid = registry.open_session("JOINT", machine=fast_machine.scaled(2))
        stats = registry.session_stats(sid)
        assert stats.memory_bytes > 0


class TestEviction:
    def test_idle_sessions_evicted_and_rolled_up(
        self, fast_machine, service_trace
    ):
        clock = FakeClock()
        registry = SessionRegistry(
            fast_machine, idle_timeout_s=60.0, clock=clock
        )
        idle = registry.open_session("JOINT", session_id="idle")
        feed_all(registry, idle, service_trace)
        clock.now = 30.0
        active = registry.open_session("JOINT", session_id="active")
        registry.feed(active, service_trace.times[:5], service_trace.pages[:5])

        # idle last touched at t=0, active at t=30: at t=80 only the
        # first has been stale longer than the 60s timeout.
        clock.now = 80.0
        assert registry.evict_idle() == ["idle"]
        assert registry.session_ids() == ["active"]

        stats = registry.stats()
        assert stats["evicted_sessions"] == 1
        assert stats["closed_sessions"] == 1
        assert stats["closed_energy_j"] > 0

    def test_evicting_empty_session_is_clean(self, fast_machine):
        """A never-fed session closes at one default period of idle."""
        clock = FakeClock()
        registry = SessionRegistry(
            fast_machine, idle_timeout_s=10.0, clock=clock
        )
        registry.open_session("JOINT", session_id="empty")
        clock.now = 100.0
        assert registry.evict_idle() == ["empty"]
        stats = registry.stats()
        assert stats["closed_sessions"] == 1
        assert stats["evicted_sessions"] == 1
        # The machine idled for one simulated period: real, tiny energy.
        assert stats["closed_energy_j"] > 0.0

    def test_open_session_sweeps(self, fast_machine):
        clock = FakeClock()
        registry = SessionRegistry(
            fast_machine, idle_timeout_s=10.0, clock=clock
        )
        registry.open_session("JOINT", session_id="old")
        clock.now = 100.0
        registry.open_session("JOINT", session_id="new")
        assert registry.session_ids() == ["new"]

    def test_bad_idle_timeout_rejected(self, fast_machine):
        with pytest.raises(SimulationError):
            SessionRegistry(fast_machine, idle_timeout_s=0.0)


class TestTelemetry:
    def test_session_stats_track_stream(self, registry, service_trace):
        sid = registry.open_session("JOINT")
        decisions = feed_all(registry, sid, service_trace)
        stats = registry.session_stats(sid)
        assert stats.method == "JOINT"
        assert stats.replay_mode == "stream-epoch"
        assert stats.accesses_fed == service_trace.num_accesses
        assert stats.decision_count == len(decisions)
        assert stats.watermark == float(service_trace.times[-1])
        assert stats.pending_accesses == (
            stats.accesses_fed - stats.accesses_processed
        )

    def test_backpressure_cap_passes_through(self, registry):
        sid = registry.open_session("JOINT", max_buffered=4)
        registry.feed(sid, [1.0, 2.0], [0, 1])
        assert registry.session_stats(sid).pending_accesses == 2
        with pytest.raises(SimulationError, match="max_buffered"):
            registry.feed(sid, [3.0, 4.0, 5.0], [2, 3, 4])
        # The rejected batch left the session's buffer untouched.
        assert registry.session_stats(sid).pending_accesses == 2

    def test_rollup_spans_open_and_closed(self, registry, service_trace):
        a = registry.open_session("JOINT")
        b = registry.open_session("JOINT")
        feed_all(registry, a, service_trace)
        feed_all(registry, b, service_trace)
        result = registry.close(a)
        stats = registry.stats()
        assert stats["open_sessions"] == 1
        assert stats["closed_sessions"] == 1
        assert stats["accesses_fed"] == 2 * service_trace.num_accesses
        assert stats["closed_energy_j"] == pytest.approx(
            result.total_energy_j
        )
        assert set(stats["sessions"]) == {b}


def test_concurrent_tenants_are_isolated(
    fast_machine, service_trace
):
    """8 threads stream concurrently; every result is bit-identical."""
    registry = SessionRegistry(fast_machine)
    results = {}
    errors = []

    def tenant(i):
        try:
            sid = registry.open_session("JOINT", session_id=f"t{i}")
            feed_all(registry, sid, service_trace, batch=700)
            results[i] = registry.close(sid)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=tenant, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    assert len(results) == 8
    energies = {r.total_energy_j for r in results.values()}
    assert len(energies) == 1  # same trace -> identical accounting
    assert registry.stats()["closed_sessions"] == 8
