"""Inside one decision of the joint power manager.

Runs the joint method on the paper's default workload, then dissects the
final period's decision: every candidate memory size the manager
enumerated, the disk IO it predicted there (extended LRU list, paper
Section IV-B), the Pareto fit and the timeout it would install (eqs. 5-6),
the three power terms, and why the winner won.

Run:  python examples/decision_anatomy.py
"""

from __future__ import annotations

from repro import generate_trace, run_method, scaled_machine
from repro.analysis.decision import explain_decision
from repro.units import GB, MB


def main() -> None:
    machine = scaled_machine(1024)
    period = machine.manager.period_s
    duration = 4 * period

    trace = generate_trace(
        dataset_bytes=8 * GB,
        data_rate=50 * MB,
        duration_s=duration,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=5,
    )
    result = run_method("JOINT", trace, machine, duration_s=duration)
    final = result.decisions[-1]
    print(explain_decision(final))
    print()
    print("Decision trajectory across the run:")
    for decision in result.decisions:
        timeout = (
            "never"
            if decision.timeout_s is None
            else f"{decision.timeout_s:5.1f} s"
        )
        print(
            f"  period {decision.period_index}: "
            f"{decision.memory_bytes / GB:6.2f} GB, timeout {timeout}"
        )


if __name__ == "__main__":
    main()
