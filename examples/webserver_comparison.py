"""Compare all 16 power-management methods on one web-server scenario.

A miniature of the paper's Fig. 7 at a single workload point: the joint
method against the 14 fixed combinations and the always-on baseline.
Prints one table with energies normalised to always-on plus the raw
performance columns.

Run:  python examples/webserver_comparison.py [dataset_gb] [rate_mb]
"""

from __future__ import annotations

import sys

from repro import compare_methods, generate_trace, scaled_machine
from repro.experiments.formatting import render_table
from repro.units import GB, MB


def main() -> None:
    dataset_gb = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    rate_mb = float(sys.argv[2]) if len(sys.argv) > 2 else 100.0

    machine = scaled_machine(1024)
    period = machine.manager.period_s
    duration, warmup = 6 * period, 2 * period

    trace = generate_trace(
        dataset_bytes=dataset_gb * GB,
        data_rate=rate_mb * MB,
        duration_s=duration,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=7,
    )
    comparison = compare_methods(
        trace, machine, duration_s=duration, warmup_s=warmup
    )

    rows = []
    normalized = comparison.normalized_by_label()
    for label, result in comparison.results.items():
        norm = normalized[label]
        rows.append(
            {
                "method": label,
                "total": round(norm.total_energy, 3),
                "disk": round(norm.disk_energy, 3),
                "memory": round(norm.memory_energy, 3),
                "latency_ms": round(result.mean_latency_s * 1e3, 2),
                "util": round(result.utilization, 3),
                "longlat/s": round(result.long_latency_per_s, 3),
                "spins": result.spin_down_cycles,
            }
        )
    rows.sort(key=lambda row: row["total"])
    print(
        render_table(
            rows,
            title=(
                f"{dataset_gb:g}-GB data set at {rate_mb:g} MB/s -- energies "
                "normalised to ALWAYS-ON"
            ),
        )
    )


if __name__ == "__main__":
    main()
