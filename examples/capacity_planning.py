"""Capacity planning with the extended LRU list -- no re-runs needed.

The paper's core trick (Section IV-B) is useful on its own: one pass over
an access trace with stack-distance instrumentation predicts the miss
count at *every* memory size.  This example builds the miss-ratio curve
for a workload, locates the break-even memory size (where extra DRAM
stops paying for the disk energy it saves) and prints the energy-optimal
configuration -- the static version of what the joint manager does every
period.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import generate_trace, scaled_machine
from repro.cache.predictor import ResizePredictor
from repro.cache.stack_distance import StackDistanceTracker
from repro.core.energy_model import evaluate_candidate
from repro.disk.service import ServiceModel
from repro.experiments.formatting import render_table
from repro.units import GB, MB


def main() -> None:
    machine = scaled_machine(1024)
    duration = 1800.0
    trace = generate_trace(
        dataset_bytes=16 * GB,
        data_rate=50 * MB,
        duration_s=duration,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=11,
    )

    # One instrumentation pass: record (time, stack depth) per access.
    # The first half of the trace only warms the LRU history (like the
    # joint manager's earlier periods); predictions use the second half.
    tracker = StackDistanceTracker()
    predictor = ResizePredictor()
    observe_from = duration / 2
    for t, page in zip(trace.times, trace.pages):
        depth = tracker.access(int(page))
        if t >= observe_from:
            predictor.record(float(t), depth)

    candidates_gb = [1, 2, 4, 8, 12, 16, 24, 32, 64, 128]
    page = machine.page_bytes
    predictions = predictor.predict(
        [int(gb * GB) // page for gb in candidates_gb],
        window_s=machine.manager.aggregation_window_s,
        period_start=observe_from,
        period_end=duration,
    )

    service = ServiceModel(machine.disk, machine.page_bytes)
    rows = []
    for gb, prediction in zip(candidates_gb, predictions):
        evaluation = evaluate_candidate(
            machine, service, prediction, period_s=duration - observe_from
        )
        rows.append(
            {
                "memory_gb": gb,
                "predicted_misses": prediction.num_disk_accesses,
                "miss_ratio": round(
                    prediction.num_disk_accesses
                    / max(prediction.num_cache_accesses, 1),
                    4,
                ),
                "idle_intervals": prediction.idle.count,
                "mean_idle_s": round(prediction.idle.mean_length, 2),
                "timeout_s": None
                if evaluation.timeout_s is None
                else round(evaluation.timeout_s, 1),
                "est_power_w": round(evaluation.total_power_w, 2),
                "meets_util": evaluation.meets_utilization,
            }
        )
    print(
        render_table(
            rows,
            title="Predicted disk IO and power vs memory size (one trace pass)",
        )
    )

    feasible = [r for r in rows if r["meets_util"]]
    best = min(feasible or rows, key=lambda row: row["est_power_w"])
    print()
    print(
        f"Energy-optimal feasible size: {best['memory_gb']} GB "
        f"at ~{best['est_power_w']} W "
        f"(break-even memory is {machine.break_even_memory_bytes / GB:.1f} GB)"
    )


if __name__ == "__main__":
    main()
