"""Quickstart: joint memory/disk power management on a web-server workload.

Generates a SPECWeb99-class trace (16-GB data set, 100 MB/s, popularity
0.1 -- the paper's default point), runs the joint power manager and the
always-on baseline, and prints the energy breakdown and the performance
metrics the paper reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import generate_trace, run_method, scaled_machine
from repro.units import GB, MB


def main() -> None:
    # A machine with the paper's hardware at 4-MB access granularity
    # (every power/time/size constant stays at its datasheet value).
    machine = scaled_machine(1024)
    period = machine.manager.period_s

    print("Machine:")
    print(f"  installed memory   {machine.memory.installed_bytes / GB:.0f} GB")
    print(f"  disk break-even    {machine.disk.break_even_time_s:.1f} s")
    print(f"  manager period     {period / 60:.0f} min")
    print()

    duration = 6 * period  # one hour: 2 warm-up + 4 measured periods
    warmup = 2 * period
    trace = generate_trace(
        dataset_bytes=16 * GB,
        data_rate=100 * MB,
        duration_s=duration,
        popularity=0.10,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=42,
    )
    print(
        f"Workload: {trace.num_accesses} accesses, "
        f"{trace.data_rate / MB:.0f} MB/s over {duration / 60:.0f} min"
    )
    print()

    baseline = run_method("ALWAYS-ON", trace, machine, duration, warmup_s=warmup)
    joint = run_method("JOINT", trace, machine, duration, warmup_s=warmup)

    for result in (baseline, joint):
        print(f"{result.label}:")
        print(f"  total energy     {result.total_energy_j / 1e3:9.1f} kJ")
        print(f"    memory         {result.memory_energy_j / 1e3:9.1f} kJ")
        print(f"    disk           {result.disk_energy_j / 1e3:9.1f} kJ")
        print(f"  mean latency     {result.mean_latency_s * 1e3:9.2f} ms")
        print(f"  disk utilisation {result.utilization:9.3f}")
        print(f"  long-latency/s   {result.long_latency_per_s:9.3f}")
        print()

    saving = 1.0 - joint.total_energy_j / baseline.total_energy_j
    print(f"Joint method saves {saving:.1%} of total energy.")
    print()
    print("Per-period decisions (memory size, disk timeout):")
    for decision in joint.decisions:
        timeout = (
            "never" if decision.timeout_s is None else f"{decision.timeout_s:5.1f} s"
        )
        print(
            f"  period {decision.period_index}: "
            f"{decision.memory_bytes / GB:6.2f} GB, timeout {timeout}"
        )


if __name__ == "__main__":
    main()
