"""A server through its day: the joint manager tracking a diurnal load.

The paper's motivation -- "the varying workload of server systems
provides opportunities for storage devices to exploit low-power modes" --
made concrete: a web-server workload whose request rate swings 8:1 over a
simulated day.  Watch the joint manager re-pick the memory size and the
disk timeout period by period, shrinking through the night and growing
back for the morning peak, and compare against a fixed configuration
that must be provisioned for the peak.

Run:  python examples/diurnal_server.py
"""

from __future__ import annotations

from repro import generate_trace, run_method, scaled_machine
from repro.experiments.formatting import render_table
from repro.traces.modulation import diurnal_profile, modulate_rate
from repro.units import GB, MB


def main() -> None:
    machine = scaled_machine(1024)
    period = machine.manager.period_s
    periods = 10
    duration = periods * period  # a compressed "day" of 100 minutes
    warmup = 2 * period

    flat = generate_trace(
        dataset_bytes=16 * GB,
        data_rate=60 * MB,
        duration_s=duration,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=99,
    )
    # Peak mid-morning, trough overnight: one full cycle, 8:1 swing.
    trace = modulate_rate(flat, diurnal_profile(duration, peak_to_trough=8.0))

    joint = run_method("JOINT", trace, machine, duration, warmup_s=warmup)
    fixed = run_method("2TFM-32GB", trace, machine, duration, warmup_s=warmup)
    base = run_method("ALWAYS-ON", trace, machine, duration, warmup_s=warmup)

    rows = []
    for decision in joint.decisions:
        window = trace.slice_time(decision.start_s, decision.end_s)
        rows.append(
            {
                "period": decision.period_index,
                "offered_MB_s": round(window.data_rate / MB, 1),
                "chosen_memory_GB": round(decision.memory_bytes / GB, 2),
                "disk_timeout_s": None
                if decision.timeout_s is None
                else round(decision.timeout_s, 1),
                "predicted_misses": decision.predicted_disk_accesses,
            }
        )
    print(render_table(rows, title="Joint manager across the day"))
    print()

    summary = []
    for result in (joint, fixed, base):
        summary.append(
            {
                "method": result.label,
                "energy_kJ": round(result.total_energy_j / 1e3, 1),
                "vs_always_on": round(
                    result.total_energy_j / base.total_energy_j, 3
                ),
                "long_latency_per_s": round(result.long_latency_per_s, 3),
                "utilization": round(result.utilization, 3),
            }
        )
    print(render_table(summary, title="Day totals (measured window)"))


if __name__ == "__main__":
    main()
