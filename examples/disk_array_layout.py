"""Data layout vs spin-down on a four-disk array (paper Section VI).

The paper leaves multiple disks as future work but names the key design
question: data layout.  This example answers it for the spin-down world:
serve one web workload from a 4-drive array under (a) a partitioned
layout that concentrates hot data on few spindles and (b) RAID-0-style
striping, each drive running its own 2-competitive timeout.

Expected outcome -- the effect Pinheiro & Bianchini exploit in the
disk-array work the paper cites [31]: partitioning parks the cold
spindles in standby almost permanently, striping keeps all four awake.

Run:  python examples/disk_array_layout.py
"""

from __future__ import annotations

from repro import generate_trace, scaled_machine
from repro.experiments.formatting import render_table
from repro.memory.system import NapMemorySystem
from repro.multidisk.engine import MultiDiskEngine
from repro.multidisk.layout import PartitionedLayout, StripedLayout
from repro.policies.fixed_timeout import FixedTimeoutPolicy
from repro.sim.prefill import warm_start_pages
from repro.units import GB, MB

NUM_DISKS = 4
DATASET_GB = 8


def run_layout(machine, trace, layout, label):
    memory = NapMemorySystem(machine.memory, 8 * GB)
    memory.prefill(warm_start_pages(trace))
    engine = MultiDiskEngine(
        machine,
        memory,
        layout,
        policy_factory=lambda: FixedTimeoutPolicy(machine.disk.break_even_time_s),
        label=label,
    )
    return engine.run(trace, duration_s=1800.0, warmup_s=600.0)


def main() -> None:
    machine = scaled_machine(1024)
    trace = generate_trace(
        dataset_bytes=DATASET_GB * GB,
        data_rate=20 * MB,
        duration_s=1800.0,
        popularity=0.1,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=17,
    )
    pages_total = DATASET_GB * GB // machine.page_bytes

    partitioned = run_layout(
        machine,
        trace,
        PartitionedLayout(NUM_DISKS, pages_per_disk=pages_total // NUM_DISKS),
        "partitioned",
    )
    striped = run_layout(
        machine, trace, StripedLayout(NUM_DISKS, extent_pages=4), "striped"
    )

    rows = []
    for result in (partitioned, striped):
        rows.append(
            {
                "layout": result.label,
                "disk_energy_kJ": round(result.disk_energy_j / 1e3, 2),
                "spin_downs": result.spin_down_cycles,
                "disks_mostly_asleep": result.sleeping_disks,
                "misses": result.disk_page_accesses,
                "mean_latency_ms": round(result.mean_latency_s * 1e3, 2),
            }
        )
    print(render_table(rows, title=f"{NUM_DISKS}-disk array, per-disk 2T timeout"))
    print()
    for result in (partitioned, striped):
        fractions = ", ".join(f"{f:.0%}" for f in result.standby_fractions)
        print(f"{result.label:12s} standby time per disk: {fractions}")


if __name__ == "__main__":
    main()
