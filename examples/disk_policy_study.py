"""Disk spin-down policies head to head: 2T vs adaptive vs oracle.

Fixes the memory size and sweeps only the disk policy, reproducing the
classic timeout comparison the paper builds on ([16], [27], [41]): the
offline oracle bounds everyone, the 2-competitive timeout stays within
its factor, the adaptive policy trades energy for fewer annoying wake-ups.
Also prints the adaptive policy's timeout trajectory.

Run:  python examples/disk_policy_study.py
"""

from __future__ import annotations

from repro import generate_trace, run_method, scaled_machine
from repro.experiments.formatting import render_table
from repro.policies.adaptive_timeout import AdaptiveTimeoutPolicy
from repro.policies.registry import parse_method
from repro.sim.engine import SimulationEngine
from repro.sim.prefill import warm_start_pages
from repro.units import GB, MB


def main() -> None:
    machine = scaled_machine(1024)
    period = machine.manager.period_s
    duration, warmup = 6 * period, period

    # A light workload (5 MB/s): long idle periods, the regime where
    # spin-down policy differences matter most.
    trace = generate_trace(
        dataset_bytes=8 * GB,
        data_rate=5 * MB,
        duration_s=duration,
        page_size=machine.page_bytes,
        file_scale=machine.scale,
        seed=23,
    )

    rows = []
    for name in ("ONFM-16GB", "2TFM-16GB", "ADFM-16GB", "ORFM-16GB"):
        result = run_method(name, trace, machine, duration, warmup_s=warmup)
        rows.append(
            {
                "disk policy": {
                    "ON": "always-on",
                    "2T": "2-competitive (11.7 s)",
                    "AD": "adaptive (Douglis)",
                    "OR": "offline oracle",
                }[name[:2]],
                "disk_energy_kJ": round(result.disk_energy_j / 1e3, 2),
                "spin_downs": result.spin_down_cycles,
                "wake_delays>0.5s": result.wake_long_latency,
                "mean_latency_ms": round(result.mean_latency_s * 1e3, 2),
            }
        )
    print(render_table(rows, title="Disk policies at a fixed 16-GB cache"))

    # Show the adaptive policy's timeout trajectory explicitly.
    spec = parse_method("ADFM-16GB")
    policy = AdaptiveTimeoutPolicy()
    memory = spec.build_memory_system(machine)
    memory.prefill(warm_start_pages(trace))
    engine = SimulationEngine(machine, memory, disk_policy=policy, label="AD")
    engine.run(trace, duration_s=duration)
    print()
    print("Adaptive-timeout trajectory (time s -> timeout s):")
    if not policy.history:
        print("  (no adaptations: no wake-ups occurred)")
    for when, timeout in policy.history[:20]:
        print(f"  {when:8.1f} -> {timeout:4.1f}")
    if len(policy.history) > 20:
        print(f"  ... {len(policy.history) - 20} more adaptations")


if __name__ == "__main__":
    main()
