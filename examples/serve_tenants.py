"""Multi-tenant streaming demo: N web servers sharing one ``repro serve``.

Spawns the daemon as a subprocess (exactly as an operator would), then
drives ``--tenants`` concurrent clients.  Each tenant streams its own
SPECWeb99-class trace in small batches -- the telemetry-shipping shape
the service is built for -- collects the period decisions as they fire,
and closes its session for the final energy accounting.

Run:  python examples/serve_tenants.py
      python examples/serve_tenants.py --tenants 8 --check   # CI smoke

``--check`` additionally verifies every tenant's daemon-side result
against an in-process offline replay of the same trace (bit-identical
energies) and exits non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.config.machine import scaled_machine  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.sim.runner import run_method  # noqa: E402
from repro.traces.specweb import generate_trace  # noqa: E402
from repro.units import GB, MB  # noqa: E402

BATCH = 256
SCALE = 1024
LISTEN_RE = re.compile(r"repro serve listening on ([\d.]+):(\d+)")


def tenant_trace(machine, seed: int):
    """Each tenant gets its own data set size and request stream."""
    return generate_trace(
        dataset_bytes=(2 + seed % 4) * GB,
        data_rate=100 * MB,
        duration_s=2 * machine.manager.period_s,
        page_size=machine.page_bytes,
        seed=seed,
        file_scale=machine.scale,
    )


def run_tenant(port: int, index: int, machine, report: dict) -> None:
    trace = tenant_trace(machine, seed=index)
    duration = 2 * machine.manager.period_s
    with ServiceClient(port=port) as client:
        session = client.open_session(
            "JOINT", scale=SCALE, session_id=f"tenant-{index}"
        )
        decisions = []
        for lo in range(0, trace.num_accesses, BATCH):
            hi = min(lo + BATCH, trace.num_accesses)
            decisions += client.feed(
                session,
                trace.times[lo:hi].tolist(),
                trace.pages[lo:hi].tolist(),
            )
        result = client.close(session, duration)
    # The close result carries the full decision list (the ones that
    # fired during feeds are its prefix) -- use it as the authority.
    report[index] = {
        "trace": trace,
        "decisions": result["decisions"],
        "streamed": len(decisions),
        "result": result,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify each result against an offline replay; exit 1 on mismatch",
    )
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    try:
        match = None
        for line in daemon.stdout:  # pragma: no branch
            match = LISTEN_RE.search(line)
            if match:
                break
        if match is None:
            print("daemon never announced its port", file=sys.stderr)
            return 1
        port = int(match.group(2))
        print(f"daemon up on port {port}; driving {args.tenants} tenants")

        machine = scaled_machine(SCALE)
        report: dict = {}
        threads = [
            threading.Thread(target=run_tenant, args=(port, i, machine, report))
            for i in range(args.tenants)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if len(report) != args.tenants:
            print(
                f"only {len(report)}/{args.tenants} tenants finished",
                file=sys.stderr,
            )
            return 1

        failures = 0
        for index in sorted(report):
            entry = report[index]
            result = entry["result"]
            print(
                f"tenant-{index}: {len(entry['decisions'])} decisions, "
                f"{result['total_energy_j'] / 1e3:8.1f} kJ "
                f"({result['replay_mode']})"
            )
            if args.check:
                offline = run_method(
                    "JOINT",
                    entry["trace"],
                    machine,
                    duration_s=2 * machine.manager.period_s,
                    warm_start=False,
                )
                if result["total_energy_j"] != offline.total_energy_j:
                    print(
                        f"  MISMATCH vs offline: {result['total_energy_j']}"
                        f" != {offline.total_energy_j}",
                        file=sys.stderr,
                    )
                    failures += 1

        with ServiceClient(port=port) as client:
            stats = client.stats()
            print(
                f"daemon rollup: {stats['closed_sessions']} sessions closed, "
                f"{stats['accesses_fed']} accesses fed, "
                f"{stats['closed_energy_j'] / 1e3:.1f} kJ accounted"
            )
            client.shutdown()

        if args.check and failures:
            print(f"{failures} tenant(s) diverged from offline", file=sys.stderr)
            return 1
        if args.check:
            print("all tenants bit-identical to offline replay")
        return 0
    finally:
        try:
            daemon.wait(timeout=10)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
