"""Campaign orchestration: a parameter grid, fanned out, cached, resumed.

Builds the generic sweep's campaign plan (one task per workload point and
method), runs it three ways through one executor --

1. cold, on a 2-worker process pool,
2. warm, against the content-addressed result cache (no simulation),
3. resumed, from the first run's journal with the cache wiped --

and shows that all three produce byte-identical rows, which is the
subsystem's core guarantee: parallelism and caching never change results.

Run:  python examples/campaign_grid.py
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
from pathlib import Path

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.config.machine import MachineConfig, scaled_machine
from repro.experiments.formatting import render_table
from repro.sim.sweep import sweep_plan


def main() -> None:
    # A short-period machine so the whole example runs in seconds.
    base = scaled_machine(1024)
    machine = MachineConfig(
        memory=base.memory,
        disk=base.disk,
        manager=dataclasses.replace(base.manager, period_s=120.0),
        scale=base.scale,
    )
    period = machine.manager.period_s

    plan = sweep_plan(
        machine,
        methods=["JOINT", "2TFM-8GB"],  # ALWAYS-ON is added automatically
        grid={"dataset_gb": [2.0, 4.0], "rate_mb": [20.0, 50.0]},
        duration_s=3 * period,
        warmup_s=period,
        defaults={"popularity": 0.2},
    )
    print(f"sweep plan: {len(plan.tasks)} independent simulation tasks")
    print(f"  first: {plan.tasks[0].describe()}")
    print()

    root = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    try:
        cache = ResultCache(root / "cache")

        cold = run_campaign(plan.tasks, jobs=2, cache=cache, run_id="demo")
        print(cold.render_summary())
        print()

        warm = run_campaign(plan.tasks, jobs=2, cache=cache)
        print(warm.render_summary())
        print()

        # Wipe the cache: only the first run's journal can satisfy this.
        shutil.rmtree(cache.root / "objects")
        resumed = run_campaign(plan.tasks, cache=cache, resume="demo")
        print(resumed.render_summary())
        print()

        rows = plan.assemble(cold.payloads())
        assert plan.assemble(warm.payloads()) == rows
        assert plan.assemble(resumed.payloads()) == rows
        print("cold == warm == resumed rows: byte-identical")
        print()
        print(render_table(rows, title="sweep rows (energy vs ALWAYS-ON)"))
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
