"""Workload synthesis workshop: the paper's three trace transforms.

Starts from one generated trace and applies the synthesizer's transforms
(data rate, data-set size, popularity) exactly as the paper's evaluation
pipeline does (Fig. 6(b)), printing the measured characteristics after
each step, then round-trips the result through the trace file formats.

Run:  python examples/trace_workshop.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import generate_trace
from repro.experiments.formatting import render_table
from repro.traces.synthesizer import (
    densify_popularity,
    scale_data_rate,
    scale_dataset,
)
from repro.traces.trace_io import load_npz, save_npz
from repro.units import MB


def describe(label, trace):
    return {
        "trace": label,
        "accesses": trace.num_accesses,
        "duration_s": round(trace.duration_s, 1),
        "rate_MB_s": round(trace.data_rate / MB, 2),
        "footprint_MB": round(trace.footprint_bytes / MB, 1),
        "popularity": round(trace.measured_popularity(), 3),
    }


def main() -> None:
    base = generate_trace(
        dataset_bytes=64 * MB,
        data_rate=4 * MB,
        duration_s=600.0,
        popularity=0.2,
        seed=31,
    )
    rows = [describe("original", base)]

    faster = scale_data_rate(base, 2.0)
    rows.append(describe("rate x2", faster))

    bigger = scale_dataset(base, 4.0)
    rows.append(describe("data set x4", bigger))

    denser = densify_popularity(base, base.measured_popularity() / 2, seed=1)
    rows.append(describe("popularity densified", denser))

    print(render_table(rows, title="Synthesizer transforms (paper Fig. 6)"))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.npz"
        save_npz(denser, path)
        loaded = load_npz(path)
        print()
        print(
            f"Round-tripped {loaded.num_accesses} accesses through "
            f"{path.name} ({path.stat().st_size / 1024:.0f} kB compressed); "
            f"meta: {loaded.meta.get('popularity_densified_to')!r}"
        )


if __name__ == "__main__":
    main()
